"""The unified-runner cross-product equivalence suite.

Every saturation entry point now runs through
:class:`repro.engine.runner.ChaseRunner`; this suite pins the runner's
hard invariant across the full cross-product — every chase variant ×
every registered engine (``naive``/``delta``/``parallel``/``persistent``)
× worker counts {1, 3} on the corpus generators — asserting *bit-identical*
:class:`~repro.chase.result.ChaseResult`s: atoms, provenance records,
null names, levels/rounds, termination flags, timestamps, and the exact
supply position after a mid-round ``max_atoms`` budget stop.

It also pins the new **delta-driven restricted firing** path: for rounds
whose triggers all have existential-free rule heads, the restricted chase
gates satisfaction against a per-round witness overlay and fires through
the batched/sharded path — compared here against the always-interleaved
reference (``delta_satisfaction=False``, the pre-runner behavior) for
every engine, worker and shard count.

Thread-mode engine internals stay in ``test_engine_parallel.py`` and the
process-backend internals in ``test_engine_persistent.py``; this file is
the variant × engine matrix.
"""

from __future__ import annotations

import pytest

from repro.chase import (
    oblivious_chase,
    restricted_chase,
    semi_oblivious_chase,
)
from repro.chase.restricted import RestrictedPolicy
from repro.chase.semi_oblivious import SemiObliviousPolicy
from repro.corpus.generators import (
    path_instance,
    random_digraph_instance,
    tournament_instance,
)
from repro.engine import (
    ChaseRunner,
    EngineConfig,
    RoundPlan,
    VariantPolicy,
    shm_available,
)
from repro.errors import ChaseBudgetExceeded
from repro.logic.terms import FreshSupply
from repro.rewriting.datalog import semi_naive_closure
from repro.rules.parser import parse_rules


def assert_bit_identical(a, b):
    """Full ChaseResult equality: atoms, levels, provenance, timestamps."""
    assert a.instance == b.instance
    assert a.levels_completed == b.levels_completed
    assert a.terminated == b.terminated
    assert a.records() == b.records()
    for term in a.instance.active_domain():
        assert a.timestamp(term) == b.timestamp(term)
    for at in a.instance:
        assert a.atom_level(at) == b.atom_level(at)


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------

#: Corpus-generator workloads: a datalog saturation (exercises the
#: delta-driven restricted gate and sharded restricted firing), an
#: existential successor overlay (exercises null drawing and supply
#: positions), and a mixed ruleset (rounds alternate between gate modes).
WORKLOADS = [
    (
        "path_tc",
        lambda: path_instance(8),
        parse_rules("E(x,y), E(y,z) -> E(x,z)", name="tc"),
        5,
    ),
    (
        "tournament_succ",
        lambda: tournament_instance(6, seed=0),
        parse_rules(
            "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)",
            name="succ_overlay",
        ),
        3,
    ),
    (
        "random_mixed",
        lambda: random_digraph_instance(5, 0.4, seed=1),
        parse_rules(
            "E(x,y) -> exists z. F(y,z)\nF(x,y), E(y,z) -> E(x,z)",
            name="mixed",
        ),
        4,
    ),
]
WORKLOAD_IDS = [w[0] for w in WORKLOADS]

VARIANTS = [
    ("oblivious", lambda i, r, n, e, mx: oblivious_chase(
        i, r, max_levels=n, max_atoms=mx, engine=e)),
    ("semi_oblivious", lambda i, r, n, e, mx: semi_oblivious_chase(
        i, r, max_levels=n, max_atoms=mx, engine=e)),
    ("restricted", lambda i, r, n, e, mx: restricted_chase(
        i, r, max_rounds=n, max_atoms=mx, engine=e)),
]
VARIANT_IDS = [v[0] for v in VARIANTS]

#: The engine axis: sequential engines at their single configuration,
#: parallel/persistent at workers ∈ {1, 3}.  Shards default to the worker
#: count; `test_engine_parallel.py` varies shards independently.  The
#: persistent entries run columnar worker replicas (the default); the
#: ``_obj`` entry pins the object-replica ablation and the ``_shm``
#: entry (present only where shared memory works) routes bulk payloads
#: through segments — all bit-identical by construction.
ENGINES = [
    ("delta", "delta"),
    ("naive", "naive"),
    ("parallel_w1", EngineConfig("parallel", workers=1)),
    ("parallel_w3", EngineConfig("parallel", workers=3)),
    ("persistent_w1", EngineConfig("persistent", workers=1)),
    ("persistent_w3", EngineConfig("persistent", workers=3)),
    (
        "persistent_w3_obj",
        EngineConfig("persistent", workers=3, columnar=False),
    ),
]
if shm_available():
    ENGINES.append(
        (
            "persistent_w3_shm",
            EngineConfig(
                "persistent", workers=3, shared_memory=True, shm_threshold=64
            ),
        )
    )
ENGINE_IDS = [e[0] for e in ENGINES]


@pytest.mark.parametrize(
    "wname,make,rules,steps", WORKLOADS, ids=WORKLOAD_IDS
)
@pytest.mark.parametrize("vname,run", VARIANTS, ids=VARIANT_IDS)
class TestRunnerCrossProduct:
    def test_every_engine_is_bit_identical(
        self, vname, run, wname, make, rules, steps
    ):
        reference = run(make(), rules, steps, "delta", 20_000)
        for ename, engine in ENGINES:
            result = run(make(), rules, steps, engine, 20_000)
            assert_bit_identical(result, reference)

    def test_budget_stop_positions_match(
        self, vname, run, wname, make, rules, steps
    ):
        # A tight atom budget stops every engine mid-round at the same
        # application, with the same partial result.
        reference = run(make(), rules, steps, "delta", 25)
        for ename, engine in ENGINES:
            result = run(make(), rules, steps, engine, 25)
            assert_bit_identical(result, reference)


class TestClosureCrossProduct:
    RULES = parse_rules("E(x,y), E(y,z) -> E(x,z)", name="tc")

    def test_every_engine_agrees(self):
        reference = semi_naive_closure(
            path_instance(10), self.RULES, engine="delta"
        )
        for ename, engine in ENGINES:
            assert (
                semi_naive_closure(path_instance(10), self.RULES, engine=engine)
                == reference
            )

    def test_budget_raise_carries_partial(self):
        with pytest.raises(ChaseBudgetExceeded) as excinfo:
            semi_naive_closure(path_instance(30), self.RULES, max_atoms=60)
        assert len(excinfo.value.partial_result) > 60


# ----------------------------------------------------------------------
# Delta-driven restricted firing vs the interleaved reference
# ----------------------------------------------------------------------


class TestDeltaDrivenRestrictedFiring:
    TC = parse_rules("E(x,y), E(y,z) -> E(x,z)", name="tc")
    MIXED = parse_rules(
        "E(x,y) -> exists z. F(y,z)\nF(x,y), E(y,z) -> E(x,z)", name="mixed"
    )

    def _interleaved_reference(self, make, rules, max_atoms=20_000):
        return restricted_chase(
            make(), rules, max_rounds=8, max_atoms=max_atoms,
            delta_satisfaction=False,
        )

    @pytest.mark.parametrize("ename,engine", ENGINES, ids=ENGINE_IDS)
    def test_sharded_path_matches_interleaved_reference(self, ename, engine):
        make = lambda: path_instance(8)
        reference = self._interleaved_reference(make, self.TC)
        result = restricted_chase(
            make(), self.TC, max_rounds=8, engine=engine
        )
        assert_bit_identical(result, reference)

    def test_worker_and_shard_counts_do_not_matter(self):
        make = lambda: tournament_instance(6, seed=2)
        reference = self._interleaved_reference(make, self.TC)
        for workers, shards in [(1, 1), (2, 5), (3, 3), (3, 8)]:
            for name in ("parallel", "persistent"):
                config = EngineConfig(name, workers=workers, shards=shards)
                result = restricted_chase(
                    make(), self.TC, max_rounds=8, engine=config
                )
                assert_bit_identical(result, reference)

    def test_budget_stop_matches_interleaved_reference(self):
        make = lambda: path_instance(20)
        reference = self._interleaved_reference(make, self.TC, max_atoms=60)
        assert not reference.terminated
        for ename, engine in ENGINES:
            result = restricted_chase(
                make(), self.TC, max_rounds=8, max_atoms=60, engine=engine
            )
            assert_bit_identical(result, reference)

    def test_mixed_rounds_choose_per_round_and_agree(self):
        # A ruleset whose rounds alternate between all-existential
        # (interleaved) and split plans; the plan choice is per round and
        # the results still match the reference exactly.
        plans = self._spy_plans(
            lambda: restricted_chase(
                tournament_instance(5, seed=1), self.MIXED, max_rounds=8
            )
        )[1]
        reference = self._interleaved_reference(
            lambda: tournament_instance(5, seed=1), self.MIXED
        )
        result = restricted_chase(
            tournament_instance(5, seed=1), self.MIXED, max_rounds=8
        )
        assert_bit_identical(result, reference)
        # Round 1 (existential triggers only) interleaves; later rounds
        # never produce an existential-free trigger in this ruleset
        # (rule 2's join variable is always a fresh null), so no split
        # plan appears.
        assert plans and plans[0].interleaved and not any(
            p.split for p in plans
        )

    #: A workload with *genuinely mixed* rounds: every round's delta is a
    #: set of E atoms, which pivots both the existential successor rule
    #: and the existential-free overlay rule at once.
    GENUINELY_MIXED = parse_rules(
        "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)",
        name="succ_overlay",
    )

    @staticmethod
    def _spy_plans(run):
        plans: list[RoundPlan] = []
        original = RestrictedPolicy.plan_round

        def spying_plan(self, result, triggers):
            plan = original(self, result, triggers)
            if triggers:
                plans.append(plan)
            return plan

        RestrictedPolicy.plan_round = spying_plan
        try:
            result = run()
        finally:
            RestrictedPolicy.plan_round = original
        return result, plans

    @pytest.mark.parametrize("ename,engine", ENGINES, ids=ENGINE_IDS)
    def test_genuinely_mixed_rounds_split_and_agree(self, ename, engine):
        # Mixed rounds (existential + existential-free triggers) run the
        # split plan — sharded probe + interleaved existential remainder
        # on the persistent backends — and stay bit-identical to the
        # fully interleaved reference on every engine.
        make = lambda: tournament_instance(6, seed=0)
        reference = self._interleaved_reference(make, self.GENUINELY_MIXED)
        result, plans = self._spy_plans(
            lambda: restricted_chase(
                make(), self.GENUINELY_MIXED, max_rounds=8, engine=engine
            )
        )
        assert_bit_identical(result, reference)
        # Every non-empty round of this workload is mixed, hence split.
        assert plans and all(
            p.split and not p.interleaved for p in plans
        )

    def test_mixed_split_rounds_probe_worker_side(self):
        # On the persistent backend the split rounds' existential-free
        # triggers are instantiated and satisfaction-probed in the
        # workers: the probe protocol runs and the parent instantiates
        # heads only for the claimed existential remainder.
        from repro.engine import TRANSPORT_STATS
        from repro.rules.rule import INSTANTIATION_STATS

        make = lambda: tournament_instance(6, seed=0)
        reference = self._interleaved_reference(make, self.GENUINELY_MIXED)
        TRANSPORT_STATS.reset()
        INSTANTIATION_STATS.reset()
        result = restricted_chase(
            make(),
            self.GENUINELY_MIXED,
            max_rounds=8,
            engine=EngineConfig("persistent", workers=3),
        )
        assert_bit_identical(result, reference)
        assert TRANSPORT_STATS.probes > 0
        # Parent-side head instantiations: exactly one per claimed
        # existential trigger (its recorded output); every ground head
        # was instantiated worker-side, once.
        claimed_existential = sum(
            1 for record in result.records() if record.created_nulls
        )
        assert INSTANTIATION_STATS.heads == claimed_existential

    @pytest.mark.parametrize(
        "config",
        [
            EngineConfig("persistent", workers=3, shards=8),
            EngineConfig("persistent", workers=3, adaptive_routing=True),
            EngineConfig(
                "persistent", workers=2, shards=5, adaptive_routing=True
            ),
            EngineConfig("parallel", workers=3, use_processes=True),
        ],
        ids=["w3s8", "w3_adaptive", "w2s5_adaptive", "legacy_processes"],
    )
    def test_mixed_budget_stop_matches_reference(self, config):
        # A tight budget stops a *mixed* round mid-way (after real null
        # draws: the path's tail successor trigger is unsatisfied every
        # round): the split path must stop at the same application, with
        # the same supply position, for every worker/shard/routing
        # combination.
        make = lambda: path_instance(8)
        reference_supply = FreshSupply("_r")
        sharded_supply = FreshSupply("_r")
        reference = restricted_chase(
            make(), self.GENUINELY_MIXED, max_rounds=6, max_atoms=20,
            supply=reference_supply, delta_satisfaction=False,
        )
        assert not reference.terminated
        assert reference_supply.position > 0
        result = restricted_chase(
            make(), self.GENUINELY_MIXED, max_rounds=6, max_atoms=20,
            supply=sharded_supply, engine=config,
        )
        assert_bit_identical(result, reference)
        assert sharded_supply.position == reference_supply.position

    def test_existential_rounds_stay_interleaved(self):
        succ = parse_rules("E(x,y) -> exists z. E(y,z)", name="succ")
        plans: list[bool] = []
        original = RestrictedPolicy.plan_round

        def spying_plan(self, result, triggers):
            plan = original(self, result, triggers)
            plans.append(plan.interleaved)
            return plan

        RestrictedPolicy.plan_round = spying_plan
        try:
            result = restricted_chase(
                path_instance(4), succ, max_rounds=4
            )
        finally:
            RestrictedPolicy.plan_round = original
        # The successor rule keeps spawning an unsatisfied tail trigger,
        # so the chase never terminates — every round must interleave.
        assert not result.terminated
        assert plans and all(plans)

    def test_supply_position_parity_on_sharded_budget_stop(self):
        # Existential-free rounds draw no nulls either way; the supply
        # position after a sharded budget stop must equal the reference's.
        make = lambda: path_instance(20)
        reference_supply = FreshSupply("_r")
        sharded_supply = FreshSupply("_r")
        reference = restricted_chase(
            make(), self.TC, max_rounds=8, max_atoms=60,
            supply=reference_supply, delta_satisfaction=False,
        )
        result = restricted_chase(
            make(), self.TC, max_rounds=8, max_atoms=60,
            supply=sharded_supply,
            engine=EngineConfig("persistent", workers=3),
        )
        assert_bit_identical(result, reference)
        assert sharded_supply.position == reference_supply.position


# ----------------------------------------------------------------------
# Strict-mode semantics through the runner
# ----------------------------------------------------------------------


class TestRunnerStrictSemantics:
    SUCC = parse_rules("E(x,y) -> exists z. E(y,z)", name="succ")

    def test_atom_budget_messages_are_variant_specific(self):
        make = lambda: tournament_instance(6, seed=0)
        cases = [
            (lambda: oblivious_chase(
                make(), self.SUCC, max_levels=5, max_atoms=40, strict=True),
             "chase exceeded 40 atoms at level"),
            (lambda: semi_oblivious_chase(
                make(), self.SUCC, max_levels=5, max_atoms=20, strict=True),
             "semi-oblivious chase exceeded 20 atoms"),
            (lambda: restricted_chase(
                path_instance(20),
                parse_rules("E(x,y), E(y,z) -> E(x,z)"),
                max_rounds=8, max_atoms=60, strict=True),
             "restricted chase exceeded 60 atoms"),
        ]
        for run, needle in cases:
            with pytest.raises(ChaseBudgetExceeded, match=needle) as excinfo:
                run()
            assert excinfo.value.partial_result is not None

    def test_step_budget_messages_are_variant_specific(self):
        make = lambda: path_instance(3)
        cases = [
            (lambda: oblivious_chase(
                make(), self.SUCC, max_levels=2, strict=True),
             "did not terminate within 2 levels"),
            (lambda: semi_oblivious_chase(
                make(), self.SUCC, max_levels=2, strict=True),
             "semi-oblivious chase did not terminate within 2 levels"),
            (lambda: restricted_chase(
                make(), self.SUCC, max_rounds=2, strict=True),
             "restricted chase did not terminate within 2 rounds"),
        ]
        for run, needle in cases:
            with pytest.raises(ChaseBudgetExceeded, match=needle):
                run()

    def test_fixpoint_probe_still_terminates_at_exact_budget(self):
        # The oblivious chase that finishes in exactly max_levels must be
        # flagged terminated by the post-budget probe, on every engine.
        tc = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        reference = oblivious_chase(path_instance(4), tc, max_levels=3)
        assert reference.terminated
        for ename, engine in ENGINES:
            result = oblivious_chase(
                path_instance(4), tc, max_levels=3, engine=engine
            )
            assert result.terminated
            assert_bit_identical(result, reference)


# ----------------------------------------------------------------------
# Stateful claims on a mid-round budget stop: the lazy/exactly-once
# contract across the sharded firing backends
# ----------------------------------------------------------------------


class RecordingSemiOblivious(SemiObliviousPolicy):
    """A semi-oblivious policy that journals its claim-call sequence."""

    def __init__(self):
        super().__init__()
        self.calls: list[tuple] = []

    def _claim(self, trigger):
        decision = SemiObliviousPolicy._claim(self, trigger)
        self.calls.append((trigger.rule, trigger.image(), decision))
        return decision


class TestStatefulClaimBudgetStopMatrix:
    """The sharded path must claim lazily, exactly once, in order.

    The inline batched stream stops claiming at a mid-round budget hit
    (``engine/batch.py``: "no further trigger is claimed"); the sharded
    path historically claimed the whole round eagerly before recording.
    This matrix pins the *claim-call sequence*, the post-stop claim state
    (the fired frontier classes) and the supply position of every
    process backend — strict and partial — against the sequential lazy
    reference.
    """

    RULES = parse_rules(
        "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)",
        name="succ_overlay",
    )
    MAX_ATOMS = 40

    ENGINES = [
        ("delta", "delta"),
        ("persistent_w1", EngineConfig("persistent", workers=1)),
        ("persistent_w3", EngineConfig("persistent", workers=3)),
        ("persistent_w3_s8", EngineConfig("persistent", workers=3, shards=8)),
        (
            "persistent_w3_adaptive",
            EngineConfig("persistent", workers=3, adaptive_routing=True),
        ),
        (
            "processes_w3",
            EngineConfig("parallel", workers=3, use_processes=True),
        ),
    ]

    def _run(self, engine, *, strict):
        policy = RecordingSemiOblivious()
        supply = FreshSupply("_so")
        runner = ChaseRunner(
            policy,
            engine,
            max_steps=5,
            max_atoms=self.MAX_ATOMS,
            strict=strict,
            supply=supply,
        )
        instance = tournament_instance(6, seed=0)
        if strict:
            with pytest.raises(ChaseBudgetExceeded) as excinfo:
                runner.run(instance, self.RULES)
            result = excinfo.value.partial_result
        else:
            result = runner.run(instance, self.RULES)
        return result, policy, supply

    @pytest.mark.parametrize("strict", [False, True], ids=["partial", "strict"])
    def test_claim_sequence_state_and_supply_parity(self, strict):
        reference, ref_policy, ref_supply = self._run("delta", strict=strict)
        assert not reference.terminated
        for ename, engine in self.ENGINES:
            result, policy, supply = self._run(engine, strict=strict)
            assert_bit_identical(result, reference)
            # Identical claim-call sequence: same triggers, same order,
            # same decisions — and nothing claimed past the budget stop.
            assert policy.calls == ref_policy.calls, ename
            # Identical post-stop claim state.
            assert policy._fired_keys == ref_policy._fired_keys, ename
            # Identical supply position (no speculative draws survive).
            assert supply.position == ref_supply.position, ename


# ----------------------------------------------------------------------
# Parked ground outputs are reused, not re-instantiated
# ----------------------------------------------------------------------


class TestParkedGroundOutputReuse:
    TC = parse_rules("E(x,y), E(y,z) -> E(x,z)", name="tc")

    def test_fire_tasks_skip_parked_triggers(self):
        # A claim gate that instantiates and parks every ground head:
        # the sharded firing path must reuse the parked atoms instead of
        # shipping fire tasks that instantiate a second time worker-side.
        from repro.chase.oblivious import ObliviousPolicy
        from repro.engine import WorkerPool

        class ParkingPolicy(ObliviousPolicy):
            def plan_round(self, result, triggers):
                def claim(trigger):
                    trigger._ground_output = (
                        trigger.rule.instantiate_head(trigger.mapping)
                    )
                    return True

                return RoundPlan(claim=claim, interleaved=False)

        shipped: list[list] = []
        original_fire = WorkerPool.fire

        def spying_fire(self, rules, tasks_per_worker):
            shipped.extend(
                task for tasks in tasks_per_worker for task in tasks
            )
            return original_fire(self, rules, tasks_per_worker)

        reference = oblivious_chase(
            path_instance(6), self.TC, max_levels=4
        )
        WorkerPool.fire = spying_fire
        try:
            runner = ChaseRunner(
                ParkingPolicy(),
                EngineConfig("persistent", workers=2),
                max_steps=4,
                max_atoms=20_000,
            )
            result = runner.run(path_instance(6), self.TC)
        finally:
            WorkerPool.fire = original_fire
        assert_bit_identical(result, reference)
        # Every trigger of this Datalog workload parked its output, so
        # no fire task was shipped at all.
        assert shipped == []


# ----------------------------------------------------------------------
# The policy surface itself
# ----------------------------------------------------------------------


class TestVariantPolicySurface:
    def test_default_policy_hooks(self):
        policy = VariantPolicy()
        assert policy.plan_round(None, []) == RoundPlan(None, False)
        assert policy.filter_new(iter([])) == []
        with pytest.raises(NotImplementedError):
            policy.naive_new_triggers(None, None)
        with pytest.raises(NotImplementedError):
            policy.naive_has_remaining(None, None)
        assert "levels" in policy.step_budget_message(4)

    def test_runner_rejects_unknown_engines(self):
        from repro.errors import ChaseError

        with pytest.raises(ChaseError, match="valid engines"):
            ChaseRunner(
                VariantPolicy(), "bogus", max_steps=1, max_atoms=1
            )

    def test_runner_serves_exactly_one_run(self):
        # The revision watermark and policy state are per-run; reuse must
        # raise instead of silently enumerating a wrong delta.
        from repro.chase.oblivious import ObliviousPolicy
        from repro.errors import ChaseError

        rules = parse_rules("E(x,y), E(y,z) -> F(x,z)")
        runner = ChaseRunner(ObliviousPolicy(), max_steps=2, max_atoms=1000)
        runner.run(path_instance(3), rules)
        with pytest.raises(ChaseError, match="exactly one run"):
            runner.run(path_instance(3), rules)

    def test_custom_policy_runs_through_the_runner(self):
        # A third-party variant: an oblivious chase that refuses to fire
        # triggers of one predicate — exercises the claim gate hook.
        from repro.chase.oblivious import ObliviousPolicy

        class NoFPolicy(ObliviousPolicy):
            def plan_round(self, result, triggers):
                return RoundPlan(
                    claim=lambda t: all(
                        a.predicate.name != "F"
                        for a in t.rule.head
                    ),
                    interleaved=False,
                )

        rules = parse_rules("E(x,y), E(y,z) -> F(x,z)\nE(x,y) -> G(y,x)")
        runner = ChaseRunner(NoFPolicy(), max_steps=3, max_atoms=1000)
        result = runner.run(path_instance(4), rules)
        produced = {a.predicate.name for a in result.instance}
        assert "G" in produced and "F" not in produced
