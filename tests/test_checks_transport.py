"""Fixture tests for the transport-boundary pass (T201-T204).

The pass is scoped to ``src/repro/engine/``: pickling belongs to the two
envelope modules (workers.py, scheduler.py), domain objects go through
the wire codec, pipes carry explicit byte payloads, and replies come
from pack_reply.
"""

import textwrap

from repro.checks.base import SourceModule
from repro.checks.transport import TransportPass

PASS = TransportPass()


def run(source, rel):
    module = SourceModule.from_source(textwrap.dedent(source), rel)
    live, allowed = [], []
    for finding in PASS.run(module):
        (allowed if module.allowed(finding) else live).append(finding)
    return live, allowed


def rules(findings):
    return sorted(f.rule for f in findings)


def test_pickle_outside_envelope_modules_is_flagged():
    live, _ = run(
        """
        import pickle

        def snapshot(table):
            return pickle.dumps(table.rows)
        """,
        rel="src/repro/engine/columnar.py",
    )
    assert rules(live) == ["T201"]


def test_raw_pickle_of_domain_object_in_envelope_module_is_flagged():
    live, _ = run(
        """
        import pickle

        def ship(instance):
            return pickle.dumps(instance)
        """,
        rel="src/repro/engine/workers.py",
    )
    assert rules(live) == ["T202"]
    assert "domain" in live[0].message


def test_untyped_pipe_send_and_recv_are_flagged():
    live, _ = run(
        """
        def push(conn, payload):
            conn.send(payload)
            return conn.recv()
        """,
        rel="src/repro/engine/workers.py",
    )
    assert rules(live) == ["T203", "T203"]


def test_hand_built_reply_tuple_is_flagged():
    live, _ = run(
        """
        def reply(value):
            return ("ok", value)
        """,
        rel="src/repro/engine/workers.py",
    )
    assert rules(live) == ["T204"]


def test_command_tuple_and_pack_reply_envelopes_are_clean():
    live, _ = run(
        """
        import pickle

        from repro.engine.wire import pack_reply

        def send_fire(round_id, payload):
            blob = pickle.dumps(("fire", round_id, payload))
            return blob

        def send_reply(status, worker_seconds):
            return pickle.dumps(pack_reply(status, worker_seconds))
        """,
        rel="src/repro/engine/workers.py",
    )
    assert live == []


def test_allow_marker_suppresses_justified_broadcast_pickle():
    live, allowed = run(
        """
        import pickle

        def broadcast(message):
            # checks: allow[T202] -- broadcast messages are command tuples
            # built by the round methods; this is the envelope choke point.
            return pickle.dumps(message)
        """,
        rel="src/repro/engine/workers.py",
    )
    assert live == []
    assert rules(allowed) == ["T202"]


def test_pass_is_scoped_to_the_engine_package():
    module = SourceModule.from_source(
        "import pickle\nblob = pickle.dumps(object())\n",
        "src/repro/logic/instances.py",
    )
    assert not PASS.wants(module)
