"""Unit tests for dependency graphs, non-recursiveness, weak acyclicity."""


from repro.rules.acyclicity import (
    chase_terminates_certificate,
    is_non_recursive,
    is_weakly_acyclic,
    position_dependency_graph,
    stratification,
)
from repro.rules.parser import parse_rules


class TestPredicateDependencies:
    def test_chain_is_non_recursive(self):
        rules = parse_rules(
            """
            P(x,y) -> Q(x,y)
            Q(x,y) -> exists z. R(y,z)
            """
        )
        assert is_non_recursive(rules)

    def test_self_loop_is_recursive(self):
        assert not is_non_recursive(
            parse_rules("E(x,y) -> exists z. E(y,z)")
        )

    def test_mutual_recursion_detected(self):
        rules = parse_rules(
            """
            P(x,y) -> exists z. Q(y,z)
            Q(x,y) -> exists z. P(y,z)
            """
        )
        assert not is_non_recursive(rules)

    def test_stratification_layers(self):
        rules = parse_rules(
            """
            P(x,y) -> Q(x,y)
            Q(x,y) -> R(x,y)
            """
        )
        layers = stratification(rules)
        names = [sorted(p.name for p in layer) for layer in layers]
        assert names == [["P"], ["Q"], ["R"]]

    def test_stratification_rejects_recursive(self):
        import pytest

        with pytest.raises(ValueError):
            stratification(parse_rules("E(x,y) -> exists z. E(y,z)"))


class TestWeakAcyclicity:
    def test_successor_rule_not_weakly_acyclic(self):
        # (E,2) --special--> (E,2) via z, and (E,1) feeds (E,2)'s cycle.
        assert not is_weakly_acyclic(
            parse_rules("E(x,y) -> exists z. E(y,z)")
        )

    def test_datalog_always_weakly_acyclic(self):
        assert is_weakly_acyclic(
            parse_rules("E(x,y), E(y,z) -> E(x,z)")
        )

    def test_non_recursive_existential_weakly_acyclic(self):
        assert is_weakly_acyclic(
            parse_rules("P(x,y) -> exists z. Q(y,z)")
        )

    def test_special_edges_marked(self):
        graph = position_dependency_graph(
            parse_rules("P(x,y) -> exists z. Q(y,z)")
        )
        from repro.logic.predicates import Predicate

        p, q = Predicate("P", 2), Predicate("Q", 2)
        assert graph[(p, 1)][(q, 0)]["special"] is False
        assert graph[(p, 1)][(q, 1)]["special"] is True


class TestCertificates:
    def test_datalog_certificate(self):
        assert (
            chase_terminates_certificate(
                parse_rules("E(x,y), E(y,z) -> E(x,z)")
            )
            == "datalog"
        )

    def test_non_recursive_certificate(self):
        assert (
            chase_terminates_certificate(
                parse_rules("P(x,y) -> exists z. Q(y,z)")
            )
            == "non-recursive"
        )

    def test_no_certificate_for_successor(self):
        assert (
            chase_terminates_certificate(
                parse_rules("E(x,y) -> exists z. E(y,z)")
            )
            is None
        )

    def test_weakly_acyclic_certificate(self):
        # Recursive on predicates but existential positions are acyclic.
        rules = parse_rules(
            """
            P(x,y) -> exists z. Q(y,z)
            Q(x,y) -> P(x,y)
            """
        )
        assert not is_non_recursive(rules)
        assert (
            chase_terminates_certificate(rules) == "weakly-acyclic"
            or chase_terminates_certificate(rules) is None
        )
