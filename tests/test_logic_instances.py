"""Unit tests for instances: indexing, paper operations, invariants."""

from repro.logic.atoms import TOP_ATOM, atom, edge
from repro.logic.instances import Instance, constants_to_nulls, instance_of
from repro.logic.predicates import EDGE, Predicate
from repro.logic.terms import Constant, FreshSupply, Variable


class TestContainer:
    def test_top_added_by_default(self):
        assert TOP_ATOM in Instance()

    def test_top_suppressed(self):
        assert TOP_ATOM not in Instance(add_top=False)

    def test_add_is_idempotent(self):
        inst = Instance()
        assert inst.add(edge("a", "b"))
        assert not inst.add(edge("a", "b"))
        assert len(inst) == 2  # top + edge

    def test_update_counts_new(self):
        inst = Instance()
        added = inst.update([edge("a", "b"), edge("a", "b"), edge("b", "c")])
        assert added == 2

    def test_discard(self):
        inst = instance_of(edge("a", "b"))
        assert inst.discard(edge("a", "b"))
        assert not inst.discard(edge("a", "b"))
        assert edge("a", "b") not in inst

    def test_equality_is_by_atom_set(self):
        assert instance_of(edge("a", "b")) == instance_of(edge("a", "b"))

    def test_sorted_atoms_deterministic(self):
        inst = instance_of(edge("b", "c"), edge("a", "b"))
        assert inst.sorted_atoms() == sorted(inst.sorted_atoms())


class TestIndexes:
    def test_with_predicate(self):
        inst = instance_of(edge("a", "b"), atom("P", "a"))
        assert inst.with_predicate(EDGE) == {edge("a", "b")}

    def test_with_term(self):
        inst = instance_of(edge("a", "b"), edge("b", "c"))
        assert inst.with_term(Variable("b")) == {
            edge("a", "b"), edge("b", "c")
        }

    def test_discard_cleans_indexes(self):
        inst = instance_of(edge("a", "b"))
        inst.discard(edge("a", "b"))
        assert inst.with_term(Constant("a")) == frozenset()
        assert inst.count(EDGE) == 0

    def test_signature_and_adom(self):
        inst = instance_of(edge("a", "b"), atom("P", "c"))
        assert Predicate("P", 1) in inst.signature()
        assert Variable("c") in inst.active_domain()


class TestPaperOperations:
    def test_restrict_to_keeps_top(self):
        inst = instance_of(edge("a", "b"), atom("P", "a"))
        restricted = inst.restrict_to([EDGE])
        assert edge("a", "b") in restricted
        assert atom("P", "a") not in restricted
        assert TOP_ATOM in restricted

    def test_disjoint_union_renames_second(self):
        left = instance_of(edge("x", "y").apply({}), add_top=True)
        right = Instance([edge(Variable("x"), Variable("y"))])
        union = left.disjoint_union(right, supply=FreshSupply("_du"))
        # Original atom present; renamed copy added with fresh variables.
        assert edge("x", "y") in union
        assert len(union.with_predicate(EDGE)) == 2

    def test_disjoint_union_shares_constants(self):
        left = instance_of(edge(Constant("a"), Constant("b")))
        right = instance_of(edge(Constant("a"), Constant("c")))
        union = left.disjoint_union(right)
        # Constants are rigid: both atoms keep constant 'a'.
        sources = {e.args[0] for e in union.with_predicate(EDGE)}
        assert sources == {Constant("a")}

    def test_is_binary(self):
        assert instance_of(edge("a", "b")).is_binary()
        assert not instance_of(atom("T", "a", "b", "c")).is_binary()

    def test_constants_to_nulls(self):
        inst = instance_of(edge("a", "b"))
        freed = constants_to_nulls(inst)
        assert not any(
            t.is_constant for t in freed.active_domain()
        )
        assert len(freed.with_predicate(EDGE)) == 1

    def test_copy_is_independent(self):
        inst = instance_of(edge("a", "b"))
        clone = inst.copy()
        clone.add(edge("b", "c"))
        assert edge("b", "c") not in inst
