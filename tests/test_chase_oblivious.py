"""Unit tests for the oblivious chase: levels, timestamps, provenance."""

import pytest

from repro.chase.oblivious import chase_from_top, chase_step, oblivious_chase
from repro.chase.trigger import triggers_of
from repro.errors import ChaseBudgetExceeded, ProvenanceError
from repro.logic.atoms import edge
from repro.logic.terms import Variable
from repro.rules.parser import parse_instance, parse_rules


class TestTriggers:
    def test_trigger_identity_on_body_variables(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = parse_instance("E(a,b)")
        triggers = list(triggers_of(inst, rules))
        assert len(triggers) == 1
        assert triggers[0] == triggers[0]

    def test_trigger_count_matches_body_matches(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        inst = parse_instance("E(a,b), E(b,c), E(c,d)")
        assert len(list(triggers_of(inst, rules))) == 2

    def test_output_invents_fresh_nulls(self):
        from repro.logic.terms import FreshSupply

        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = parse_instance("E(a,b)")
        trigger = next(iter(triggers_of(inst, rules)))
        atoms, invented = trigger.output(FreshSupply("_t"))
        assert len(atoms) == 1 and len(invented) == 1

    def test_satisfaction_check(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        satisfied = parse_instance("E(a,b), E(b,c)")
        trigger = sorted(
            triggers_of(satisfied, rules),
            key=lambda t: str(t.mapping),
        )[0]
        # The trigger on E(a,b) already has E(b,c) as a head witness.
        matches_ab = any(
            t.is_satisfied_in(satisfied)
            for t in triggers_of(satisfied, rules)
        )
        assert matches_ab


class TestLevels:
    def test_level_zero_is_input(self, successor_rules, edge_ab):
        result = oblivious_chase(edge_ab, successor_rules, max_levels=3)
        assert result.prefix(0) == edge_ab

    def test_levels_are_monotone(self, successor_rules, edge_ab):
        result = oblivious_chase(edge_ab, successor_rules, max_levels=3)
        for level in range(result.levels_completed):
            assert result.prefix(level).atoms() <= result.prefix(
                level + 1
            ).atoms()

    def test_one_new_atom_per_level_for_successor(
        self, successor_rules, edge_ab
    ):
        result = oblivious_chase(edge_ab, successor_rules, max_levels=4)
        for level in range(1, 5):
            assert len(result.new_atoms_at(level)) == 1

    def test_triggers_fire_exactly_once(self, edge_ab):
        # Transitivity on a 2-path closes in one level then terminates.
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        inst = parse_instance("E(a,b), E(b,c)")
        result = oblivious_chase(inst, rules, max_levels=5)
        assert result.terminated
        assert edge("A", "B").predicate  # sanity on import

    def test_termination_detection(self):
        rules = parse_rules("P(x,y) -> exists z. Q(y,z)")
        result = oblivious_chase(
            parse_instance("P(a,b)"), rules, max_levels=5
        )
        assert result.terminated
        assert result.levels_completed <= 2

    def test_chase_from_top(self):
        rules = parse_rules("top -> exists x,y. E(x,y)")
        result = chase_from_top(rules, max_levels=3)
        assert result.terminated
        assert len(result.instance.with_predicate(edge("x", "y").predicate)) == 1

    def test_chase_step_is_level_one(self, successor_rules, edge_ab):
        stepped = chase_step(edge_ab, successor_rules)
        full = oblivious_chase(edge_ab, successor_rules, max_levels=1)
        assert stepped == full.instance


class TestTimestamps:
    def test_initial_terms_have_timestamp_zero(self, path_chase):
        from repro.logic.terms import Constant

        assert path_chase.timestamp(Constant("a")) == 0

    def test_created_terms_timestamp_increments(self, path_chase):
        terms = sorted(
            path_chase.chase_terms(), key=path_chase.timestamp
        )
        stamps = [path_chase.timestamp(t) for t in terms]
        assert stamps == [1, 2, 3, 4]

    def test_unknown_term_raises(self, path_chase):
        with pytest.raises(ProvenanceError):
            path_chase.timestamp(Variable("nope"))

    def test_timestamp_multiset(self, path_chase):
        domain = path_chase.instance.active_domain()
        ts = path_chase.timestamp_multiset(domain)
        assert len(ts) == len(domain)

    def test_atom_level_known(self, path_chase):
        for atom in path_chase.instance:
            assert path_chase.atom_level(atom) >= 0


class TestProvenance:
    def test_frontier_of_created_term(self, path_chase):
        term = sorted(
            path_chase.chase_terms(), key=path_chase.timestamp
        )[0]
        frontier = path_chase.frontier_of(term)
        from repro.logic.terms import Constant

        assert frontier == {Constant("b")}

    def test_initial_term_has_no_creation(self, path_chase):
        from repro.logic.terms import Constant

        with pytest.raises(ProvenanceError):
            path_chase.creation_of(Constant("a"))

    def test_records_cover_all_nulls(self, path_chase):
        recorded = set()
        for record in path_chase.records():
            recorded.update(record.created_nulls)
        assert recorded == path_chase.chase_terms()


class TestBudgets:
    def test_max_atoms_stops(self):
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        result = oblivious_chase(
            parse_instance("E(a,b)"), rules, max_levels=6, max_atoms=50
        )
        assert not result.terminated

    def test_strict_budget_raises(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        with pytest.raises(ChaseBudgetExceeded):
            oblivious_chase(
                parse_instance("E(a,b)"),
                rules,
                max_levels=2,
                strict=True,
            )

    def test_statistics_shape(self, path_chase):
        stats = path_chase.statistics()
        assert stats["levels"] == 4
        assert stats["chase_terms"] == 4
