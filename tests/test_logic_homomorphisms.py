"""Unit tests for homomorphism search, equivalence, isomorphism, cores."""

from repro.logic.atoms import edge
from repro.logic.homomorphisms import (
    core,
    find_homomorphism,
    find_isomorphism,
    has_homomorphism,
    homomorphically_equivalent,
    homomorphisms,
    is_isomorphic,
)
from repro.logic.instances import Instance, instance_of
from repro.logic.terms import Constant, Variable


V, C = Variable, Constant


def path(*names):
    return [edge(names[i], names[i + 1]) for i in range(len(names) - 1)]


class TestBasicSearch:
    def test_identity_embedding(self):
        target = instance_of(edge("a", "b"))
        assert has_homomorphism([edge("a", "b")], target)

    def test_constants_are_rigid(self):
        assert not has_homomorphism(
            [edge(C("a"), C("b"))], instance_of(edge("c", "d"))
        )

    def test_variables_map_freely(self):
        assert has_homomorphism(
            [edge(V("x"), V("y"))], instance_of(edge("a", "b"))
        )

    def test_join_variable_consistency(self):
        source = [edge(V("x"), V("y")), edge(V("y"), V("z"))]
        assert has_homomorphism(source, instance_of(*path("a", "b", "c")))
        assert not has_homomorphism(
            source, instance_of(edge("a", "b"), edge("c", "d"))
        )

    def test_variables_may_merge(self):
        source = [edge(V("x"), V("y"))]
        assert has_homomorphism(source, instance_of(edge("a", "a")))

    def test_all_homomorphisms_enumerated(self):
        source = [edge(V("x"), V("y"))]
        target = instance_of(edge("a", "b"), edge("b", "c"))
        assert len(list(homomorphisms(source, target))) == 2

    def test_seed_pins_variables(self):
        # Lowercase names become variables: the target is variable-based,
        # matching the paper's variable-only instances.
        source = [edge(V("x"), V("y"))]
        target = instance_of(edge("a", "b"), edge("b", "c"))
        pinned = list(
            homomorphisms(source, target, seed={V("x"): V("b")})
        )
        assert len(pinned) == 1
        assert pinned[0].apply_term(V("y")) == V("c")

    def test_inconsistent_seed_no_results(self):
        source = [edge(V("x"), V("x"))]
        target = instance_of(edge("a", "b"))
        assert not list(homomorphisms(source, target, seed={V("x"): V("a")}))


class TestInjective:
    def test_injective_blocks_merging(self):
        source = [edge(V("x"), V("y"))]
        target = instance_of(edge("a", "a"))
        assert has_homomorphism(source, target)
        assert not has_homomorphism(source, target, injective=True)

    def test_injective_finds_distinct_images(self):
        source = [edge(V("x"), V("y")), edge(V("y"), V("z"))]
        target = instance_of(*path("a", "b", "c"))
        hom = find_homomorphism(source, target, injective=True)
        assert hom is not None and hom.is_injective()

    def test_non_injective_seed_rejected(self):
        source = [edge(V("x"), V("y"))]
        target = instance_of(edge("a", "b"))
        results = list(
            homomorphisms(
                source,
                target,
                seed={V("x"): C("a"), V("y"): C("a")},
                injective=True,
            )
        )
        assert results == []


class TestEquivalenceAndIsomorphism:
    def test_hom_equivalent_paths_of_different_length_not(self):
        assert not homomorphically_equivalent(
            instance_of(*path("a", "b", "c"), add_top=False),
            instance_of(edge("a", "b"), add_top=False),
        )

    def test_hom_equivalent_variable_renamings(self):
        left = Instance([edge(V("x"), V("y"))], add_top=False)
        right = Instance([edge(V("u"), V("v"))], add_top=False)
        assert homomorphically_equivalent(left, right)

    def test_loop_dominates_everything(self):
        loop = Instance([edge(V("l"), V("l"))], add_top=False)
        long_path = Instance(
            [edge(V("a"), V("b")), edge(V("b"), V("c"))], add_top=False
        )
        assert has_homomorphism(long_path, loop)
        assert not has_homomorphism(loop, long_path)

    def test_isomorphism_requires_same_size(self):
        left = Instance([edge(V("x"), V("y"))], add_top=False)
        right = Instance(
            [edge(V("u"), V("v")), edge(V("v"), V("w"))], add_top=False
        )
        assert find_isomorphism(left, right) is None

    def test_isomorphic_renaming(self):
        left = Instance([edge(V("x"), V("y"))], add_top=False)
        right = Instance([edge(V("u"), V("v"))], add_top=False)
        assert is_isomorphic(left, right)

    def test_not_isomorphic_different_shape(self):
        fork = Instance(
            [edge(V("x"), V("y")), edge(V("x"), V("z"))], add_top=False
        )
        chain = Instance(
            [edge(V("x"), V("y")), edge(V("y"), V("z"))], add_top=False
        )
        assert not is_isomorphic(fork, chain)


class TestCore:
    def test_core_of_redundant_edges(self):
        # Two parallel variable edges retract to one.
        inst = Instance(
            [edge(V("x"), V("y")), edge(V("u"), V("v"))], add_top=False
        )
        reduced = core(inst)
        assert len(reduced.with_predicate(edge("x", "y").predicate)) == 1

    def test_core_of_core_is_itself(self):
        inst = Instance([edge(V("x"), V("y"))], add_top=False)
        once = core(inst)
        assert core(once) == once

    def test_constants_block_retraction(self):
        inst = instance_of(
            edge(C("a"), C("b")), edge(C("c"), C("d")), add_top=False
        )
        assert core(inst) == inst
