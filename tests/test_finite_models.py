"""Unit tests for finite-model tools: is_model, folding, countermodels."""

from repro.chase.oblivious import oblivious_chase
from repro.corpus.examples import example_1
from repro.finite.models import (
    datalog_saturate,
    find_finite_countermodel,
    finite_entails,
    fold_chase,
    is_model,
    violations,
)
from repro.queries.entailment import entails_cq
from repro.rules.parser import parse_instance, parse_query, parse_rules


class TestIsModel:
    def test_closed_instance_is_model(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        # A 2-cycle: every vertex has a successor.
        assert is_model(parse_instance("E(a,b), E(b,a)"), rules)

    def test_open_instance_is_not_model(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        assert not is_model(parse_instance("E(a,b)"), rules)

    def test_violations_report_triggers(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        bad = violations(parse_instance("E(a,b)"), rules)
        assert len(bad) == 1

    def test_datalog_satisfaction(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        assert not is_model(parse_instance("E(a,b), E(b,c)"), rules)
        assert is_model(
            parse_instance("E(a,b), E(b,c), E(a,c)"), rules
        )

    def test_loop_is_model_of_example1(self):
        entry = example_1()
        assert is_model(parse_instance("E(a,a)"), entry.rules)


class TestFoldChase:
    def test_folded_prefix_is_finite_and_smaller(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        result = oblivious_chase(
            parse_instance("E(a,b)"), rules, max_levels=4
        )
        folded = fold_chase(result.instance, result.timestamp, fold_level=3)
        assert len(folded.active_domain()) < len(
            result.instance.active_domain()
        )

    def test_folding_example1_creates_model_after_saturation(self):
        """The classical construction: fold the tail, close transitively —
        a finite model of Example 1 appears, and it has a loop."""
        entry = example_1()
        result = oblivious_chase(entry.instance, entry.rules, max_levels=3)
        folded = fold_chase(result.instance, result.timestamp, fold_level=2)
        saturated = datalog_saturate(folded, entry.rules, max_rounds=10)
        assert is_model(saturated, entry.rules.datalog_rules())
        assert entails_cq(saturated, parse_query("E(x,x)"))


class TestCountermodels:
    def test_example1_loop_has_no_finite_countermodel(self):
        """Finite semantics of Example 1: every finite model loops."""
        entry = example_1()
        assert finite_entails(
            entry.instance, entry.rules, parse_query("E(x,x)"),
            max_domain=1,
        )

    def test_countermodel_found_when_query_not_finite_entailed(self):
        # Successor alone: the 2-cycle is a loop-free finite model.
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        counter = find_finite_countermodel(
            parse_instance("E(a,b)"), rules, parse_query("E(x,x)"),
            max_domain=1,
        )
        assert counter is not None
        assert is_model(counter, rules)
        assert not entails_cq(counter, parse_query("E(x,x)"))

    def test_finite_and_unrestricted_agree_for_fc_fragment(self):
        """Linear rules are finitely controllable [27]: the finite and
        chase answers agree on the loop query."""
        from repro.queries.entailment import certain_answer

        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        instance = parse_instance("E(a,b)")
        query = parse_query("E(x,x)")
        unrestricted = certain_answer(instance, rules, query, max_levels=4)
        finite = not bool(
            find_finite_countermodel(instance, rules, query, max_domain=1)
        )
        assert unrestricted == finite == False  # noqa: E712

    def test_example1_witnesses_non_fc(self):
        """Example 1's divergence: chase says no loop, finite says loop —
        so the (non-bdd) rule set is not finitely controllable."""
        from repro.queries.entailment import certain_answer

        entry = example_1()
        query = parse_query("E(x,x)")
        unrestricted = certain_answer(
            entry.instance, entry.rules, query, max_levels=4
        )
        finite = finite_entails(
            entry.instance, entry.rules, query, max_domain=1
        )
        assert not unrestricted and finite
