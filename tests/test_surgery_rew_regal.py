"""Unit tests for body rewriting (§4.4), quickness (Def 26), regal pipeline."""

import pytest

from repro.errors import RewritingBudgetExceeded
from repro.logic.instances import Instance
from repro.rules.classes import is_forward_existential, is_predicate_unique
from repro.rules.parser import parse_instance, parse_rules
from repro.surgery.body_rewriting import body_rewrite, body_rewriting_of_rule
from repro.surgery.quickness import is_quick_on, quickness_violations
from repro.surgery.regal import regal_pipeline, regality_report
from repro.surgery.streamline import streamline


class TestBodyRewriting:
    def test_contains_original_rules(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        rewritten = body_rewrite(rules, max_depth=8)
        for rule in rules:
            assert rule in rewritten

    def test_datalog_shortcut_added(self):
        rules = parse_rules(
            """
            P(x,y) -> F(x,y)
            F(x,y) -> G(x,y)
            """
        )
        rewritten = body_rewrite(rules, max_depth=6)
        # rew adds the shortcut P -> G.
        shortcut = [
            r
            for r in rewritten
            if {p.name for p in r.body_predicates()} == {"P"}
            and {p.name for p in r.head_predicates()} == {"G"}
        ]
        assert shortcut

    def test_lemma30_chase_preserved(self):
        from repro.chase.oblivious import oblivious_chase
        from repro.logic.homomorphisms import homomorphically_equivalent

        rules = parse_rules(
            """
            P(x,y) -> F(x,y)
            F(x,y) -> exists z. G(y,z)
            """
        )
        rewritten = body_rewrite(rules, max_depth=6)
        inst = parse_instance("P(a,b)")
        left = oblivious_chase(inst, rules, max_levels=4)
        right = oblivious_chase(inst, rewritten, max_levels=4)
        assert homomorphically_equivalent(left.instance, right.instance)

    def test_lemma31_preserves_structure(self):
        rules = streamline(parse_rules("E(x,y) -> exists z. E(y,z)"))
        rewritten = body_rewrite(rules, max_depth=8)
        assert is_forward_existential(rewritten)
        assert is_predicate_unique(rewritten)

    def test_non_bdd_raises_in_strict_mode(self):
        # The full-frontier body E(x, y) has no finite rewriting under
        # transitivity (Example 1's reason for not being bdd).
        rules = parse_rules(
            """
            E(x,y), E(y,z) -> E(x,z)
            E(x,y) -> F(x,y)
            """
        )
        target = [r for r in rules if not r.is_datalog or len(r.body) == 1][0]
        with pytest.raises(RewritingBudgetExceeded):
            body_rewriting_of_rule(target, rules, max_depth=3, strict=True)


class TestQuickness:
    def test_datalog_chain_not_quick(self):
        rules = parse_rules(
            """
            P0(x,y) -> P1(x,y)
            P1(x,y) -> P2(x,y)
            """
        )
        violations = quickness_violations(
            rules, parse_instance("P0(a,b)"), max_levels=4
        )
        # P2(a,b) appears at level 2 with frontier {a, b} ⊆ adom(I).
        assert any(v.atom.predicate.name == "P2" for v in violations)

    def test_lemma32_rew_restores_quickness(self):
        rules = parse_rules(
            """
            P0(x,y) -> P1(x,y)
            P1(x,y) -> P2(x,y)
            """
        )
        rewritten = body_rewrite(rules, max_depth=6)
        assert is_quick_on(rewritten, parse_instance("P0(a,b)"), max_levels=4)

    def test_single_linear_rule_is_quick(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        assert is_quick_on(rules, parse_instance("E(a,b)"), max_levels=3)

    def test_violation_reports_frontier(self):
        rules = parse_rules(
            """
            P0(x,y) -> P1(x,y)
            P1(x,y) -> P2(x,y)
            """
        )
        violations = quickness_violations(
            rules, parse_instance("P0(a,b)"), max_levels=4
        )
        assert all(v.level >= 2 for v in violations)


class TestRegalPipeline:
    def test_pipeline_on_tournament_builder(self):
        rules = parse_rules(
            """
            top -> exists x, y. E(x,y)
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        pipeline = regal_pipeline(rules, rewriting_depth=8, strict=False)
        report = regality_report(
            pipeline.regal, witness_instances=[Instance()], max_levels=3
        )
        assert report.is_regal_evidence

    def test_pipeline_reifies_wide_signatures(self):
        rules = parse_rules("T(x,y,u) -> exists z. T(y,z,u)")
        pipeline = regal_pipeline(
            rules, parse_instance("T(a,b,c)"), rewriting_depth=8,
            strict=False,
        )
        assert pipeline.regal.signature().is_binary()
        assert pipeline.reified != pipeline.encoded

    def test_pipeline_skips_reification_for_binary(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        pipeline = regal_pipeline(rules, rewriting_depth=8, strict=False)
        assert pipeline.reified == pipeline.encoded

    def test_pipeline_encodes_instance(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        pipeline = regal_pipeline(
            rules, parse_instance("E(a,b)"), rewriting_depth=8,
            strict=False,
        )
        assert len(pipeline.encoded) == len(rules) + 1

    def test_stage_listing(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        pipeline = regal_pipeline(rules, rewriting_depth=8, strict=False)
        names = [name for name, _ in pipeline.stages()]
        assert names == [
            "original", "encoded", "reified", "streamlined", "regal"
        ]
