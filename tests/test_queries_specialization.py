"""Unit tests for Proposition 6: injective closures of queries."""

from repro.queries.entailment import entails_cq, entails_ucq
from repro.queries.specialization import (
    cq_specializations,
    injective_closure,
    is_injectively_closed,
)
from repro.queries.ucq import UCQ
from repro.rules.parser import parse_instance, parse_query


class TestCQSpecializations:
    def test_identity_always_included(self):
        q = parse_query("E(x,y), E(y,z)")
        assert q in cq_specializations(q)

    def test_merge_produces_loop_variant(self):
        q = parse_query("E(x,y)")
        merged = parse_query("E(x,x)")
        assert merged in cq_specializations(q)

    def test_answer_variables_keep_identity(self):
        q = parse_query("E(x,y)", answers=("x", "y"))
        for spec in cq_specializations(q):
            assert len(spec.answers) == 2

    def test_answer_never_merged_into_existential(self):
        q = parse_query("E(x,y), E(y,z)", answers=("x",))
        for spec in cq_specializations(q):
            # The answer variable must survive in every quotient.
            assert spec.answers[0].name == "x"


class TestInjectiveClosure:
    def test_proposition6_equivalence(self):
        """I ⊨ Q(ā) ⇔ ∃q ∈ Q_inj, I ⊨inj q(ā) on a corpus of instances."""
        q = parse_query("E(x,y), E(y,z)")
        query = UCQ([q])
        closed = injective_closure(query)
        corpus = [
            parse_instance("E(a,b), E(b,c)"),
            parse_instance("E(a,a)"),
            parse_instance("E(a,b)"),
            parse_instance("E(a,b), E(b,a)"),
            parse_instance("P(a)"),
        ]
        for inst in corpus:
            plain = entails_ucq(inst, query)
            injective = any(
                entails_cq(inst, disjunct, injective=True)
                for disjunct in closed
            )
            assert plain == injective, f"mismatch on {inst}"

    def test_loop_instance_needs_merged_disjunct(self):
        # E(a,a) satisfies E(x,y),E(y,z) only via the merged quotient.
        q = parse_query("E(x,y), E(y,z)")
        closed = injective_closure(UCQ([q]))
        loop = parse_instance("E(a,a)")
        assert not entails_cq(loop, q, injective=True)
        assert any(
            entails_cq(loop, disjunct, injective=True)
            for disjunct in closed
        )

    def test_idempotence(self):
        q = parse_query("E(x,y), E(y,z)")
        closed = injective_closure(UCQ([q]))
        assert is_injectively_closed(closed)

    def test_closure_grows(self):
        q = parse_query("E(x,y), E(y,z)")
        assert len(injective_closure(UCQ([q]))) > 1
