"""Unit tests for rule classes: Datalog/linear/guarded/sticky and the
paper-specific Definitions 21 (forward-existential) and 22 (predicate-unique)."""

from repro.rules.classes import (
    classify,
    has_atomic_heads,
    is_datalog,
    is_forward_existential,
    is_forward_existential_rule,
    is_frontier_guarded,
    is_guarded,
    is_linear,
    is_predicate_unique,
    is_predicate_unique_rule,
    is_sticky,
    sticky_marking,
)
from repro.rules.parser import parse_rule, parse_rules


class TestClassicalClasses:
    def test_datalog(self):
        assert is_datalog(parse_rules("E(x,y), E(y,z) -> E(x,z)"))
        assert not is_datalog(parse_rules("E(x,y) -> exists z. E(y,z)"))

    def test_linear(self):
        assert is_linear(parse_rules("E(x,y) -> exists z. E(y,z)"))
        assert not is_linear(parse_rules("E(x,y), E(y,z) -> E(x,z)"))

    def test_guarded(self):
        assert is_guarded(parse_rules("E(x,y) -> exists z. E(y,z)"))
        # Body without an atom covering both x-pairs is unguarded.
        assert not is_guarded(parse_rules("E(x,xp), E(y,yp) -> E(x,yp)"))
        # A guard atom makes it guarded.
        assert is_guarded(
            parse_rules("G(x,y,z), E(x,y), E(y,z) -> E(x,z)")
        )

    def test_frontier_guarded(self):
        # Frontier {x, yp} is covered by no single atom.
        assert not is_frontier_guarded(
            parse_rules("E(x,xp), E(y,yp) -> E(x,yp)")
        )
        assert is_frontier_guarded(
            parse_rules("E(x,y), E(y,z) -> E(x,y)")
        )

    def test_atomic_heads(self):
        assert has_atomic_heads(parse_rules("E(x,y) -> exists z. E(y,z)"))
        assert not has_atomic_heads(
            parse_rules("E(x,y) -> exists z. E(y,z), F(y,z)")
        )


class TestForwardExistential:
    def test_canonical_rule(self):
        assert is_forward_existential_rule(
            parse_rule("E(x,y) -> exists z. E(y,z)")
        )

    def test_backward_head_rejected(self):
        assert not is_forward_existential_rule(
            parse_rule("E(x,y) -> exists z. E(z,y)")
        )

    def test_frontier_to_frontier_head_rejected(self):
        assert not is_forward_existential_rule(
            parse_rule("E(x,y) -> exists z. E(x,y), E(y,z)")
        )

    def test_unary_existential_head_allowed(self):
        # Streamlining produces A_0(w) heads; Definition 21 tolerates them.
        assert is_forward_existential_rule(
            parse_rule("E(x,y) -> exists w. A(w), B(y,w)")
        )

    def test_wide_head_rejected(self):
        assert not is_forward_existential_rule(
            parse_rule("E(x,y) -> exists z. T(x,y,z)")
        )

    def test_datalog_rules_unconstrained(self):
        rules = parse_rules(
            """
            E(x,y), E(y,z) -> E(x,z)
            E(x,y) -> exists z. E(y,z)
            """
        )
        assert is_forward_existential(rules)

    def test_paper_example_two_heads(self):
        # §4.3's example of a predicate-unique forward-existential rule.
        rule = parse_rule("A(x), B(y) -> exists z. D(x,z), E(y,z)")
        assert is_forward_existential_rule(rule)
        assert is_predicate_unique_rule(rule)


class TestPredicateUnique:
    def test_duplicate_head_predicate_rejected(self):
        assert not is_predicate_unique_rule(
            parse_rule("E(x,y) -> exists z, w. E(y,z), E(y,w)")
        )

    def test_datalog_exempt(self):
        rules = parse_rules(
            """
            E(x,y) -> E(y,x), E(x,x)
            """
        )
        assert is_predicate_unique(rules)


class TestSticky:
    def test_join_free_is_sticky(self):
        assert is_sticky(parse_rules("E(x,y) -> exists z. E(y,z)"))

    def test_transitivity_not_sticky(self):
        assert not is_sticky(parse_rules("E(x,y), E(y,z) -> E(x,z)"))

    def test_head_preserved_join_is_sticky(self):
        # The join variable y appears in the head, so it is unmarked.
        assert is_sticky(parse_rules("R(x,y), S(y,z) -> T(y)"))

    def test_marking_initializes_on_head_absent_vars(self):
        rules = parse_rules("R(x,y) -> T(y)")
        marked = sticky_marking(rules)
        rule = next(iter(rules))
        names = {v.name for v in marked[rule]}
        assert names == {"x"}

    def test_marking_propagates(self):
        rules = parse_rules(
            """
            R(x,y) -> T(y)
            S(u,v) -> R(u,v)
            """
        )
        marked = sticky_marking(rules)
        second = [r for r in rules if "S" in {p.name for p in r.body_predicates()}][0]
        # Position (R, 1) is marked via rule one, so u gets marked in rule two.
        assert {v.name for v in marked[second]} == {"u"}


class TestClassify:
    def test_report_shape(self):
        report = classify(parse_rules("E(x,y) -> exists z. E(y,z)"))
        assert report["linear"] and report["guarded"] and report["sticky"]
        assert report["binary_signature"]
