"""Unit tests for Section 6 extensions: UCQ-defined E and Question 46."""

import pytest

from repro.core.extensions import (
    define_edge_by_ucq,
    observed_tournament_bound,
    question46_bound,
)
from repro.core.theorem import check_property_p
from repro.logic.predicates import EDGE
from repro.queries.ucq import UCQ
from repro.rules.parser import parse_instance, parse_query, parse_rules


class TestDefineEdgeByUCQ:
    def test_adds_one_rule_per_disjunct(self):
        rules = parse_rules("F(x,y) -> exists z. F(y,z)")
        definition = UCQ(
            [
                parse_query("F(x,y)", answers=("x", "y")),
                parse_query("F(x,u), F(u,y)", answers=("x", "y")),
            ]
        )
        extended = define_edge_by_ucq(rules, definition)
        assert len(extended) == len(rules) + 2
        assert EDGE in extended.signature()

    def test_rejects_non_binary_definition(self):
        rules = parse_rules("F(x,y) -> exists z. F(y,z)")
        with pytest.raises(ValueError):
            define_edge_by_ucq(
                rules, UCQ([parse_query("F(x,y)", answers=("x",))])
            )

    def test_rejects_non_fresh_target(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        with pytest.raises(ValueError):
            define_edge_by_ucq(
                rules, UCQ([parse_query("E(x,y)", answers=("x", "y"))])
            )

    def test_property_p_transfers_to_defined_relation(self):
        """Section 6: Theorem 1 applies to the UCQ-defined E."""
        rules = parse_rules(
            """
            F(x,y) -> exists z. F(y,z)
            F(x,xp), F(y,yp) -> F(x,yp)
            """
        )
        definition = UCQ([parse_query("F(x,y)", answers=("x", "y"))])
        extended = define_edge_by_ucq(rules, definition)
        report = check_property_p(
            extended, parse_instance("F(a,b)"), max_levels=4,
            max_atoms=30_000,
        )
        assert report.loop_entailed
        assert report.consistent_with_property_p


class TestQuestion46:
    def test_bound_grows_with_rewriting_size(self):
        small = UCQ([parse_query("E(x,y)", answers=("x", "y"))])
        assert question46_bound(small) == 4
        double = UCQ(
            [
                parse_query("E(x,y)", answers=("x", "y")),
                parse_query("E(x,u), E(u,y)", answers=("x", "y")),
            ]
        )
        assert question46_bound(double) == 18

    def test_empty_rewriting_bound_is_one(self):
        assert question46_bound(UCQ([], answers=())) == 1

    def test_loop_free_chase_respects_bound(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        report = observed_tournament_bound(
            rules, parse_instance("E(a,b)"), max_levels=4
        )
        assert report.loop_free
        assert report.observed_max == 2
        assert report.bound_respected

    def test_looping_chase_report(self):
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        report = observed_tournament_bound(
            rules, parse_instance("E(a,b)"), max_levels=3,
            max_atoms=20_000,
        )
        assert not report.loop_free
        assert report.bound_respected  # vacuous for looping chases
