"""Unit tests for subsumption, CQ cores and UCQ minimization."""

from repro.queries.minimization import (
    cq_core,
    equivalent,
    is_subsumed_by_any,
    minimize_ucq,
    subsumes,
)
from repro.queries.ucq import UCQ
from repro.rules.parser import parse_query


class TestSubsumption:
    def test_more_general_subsumes(self):
        general = parse_query("E(x,y)")
        specific = parse_query("E(x,y), E(y,z)")
        assert subsumes(general, specific)
        assert not subsumes(specific, general)

    def test_answers_preserved(self):
        general = parse_query("E(x,y)", answers=("x",))
        specific = parse_query("E(x,y), E(y,z)", answers=("y",))
        # hom must send general's answer x to specific's answer y: E(y,?) ok.
        assert subsumes(general, specific)

    def test_different_arity_never_subsumes(self):
        assert not subsumes(
            parse_query("E(x,y)", answers=("x",)),
            parse_query("E(x,y)", answers=("x", "y")),
        )

    def test_equivalence(self):
        left = parse_query("E(x,y)")
        right = parse_query("E(u,v)")
        assert equivalent(left, right)


class TestCore:
    def test_redundant_atom_removed(self):
        q = parse_query("E(x,y), E(u,v)")
        reduced = cq_core(q)
        assert len(reduced.atoms) == 1

    def test_path_is_its_own_core(self):
        q = parse_query("E(x,y), E(y,z)")
        assert cq_core(q) == q

    def test_answers_protected(self):
        q = parse_query("E(x,y), E(u,v)", answers=("x", "u"))
        reduced = cq_core(q)
        # Both atoms carry answer variables: nothing can be dropped.
        assert len(reduced.atoms) == 2


class TestMinimizeUCQ:
    def test_subsumed_disjunct_dropped(self):
        general = parse_query("E(x,y)")
        specific = parse_query("E(x,y), E(y,z)")
        minimized = minimize_ucq(UCQ([general, specific]))
        assert len(minimized) == 1

    def test_equivalent_disjuncts_keep_one(self):
        left = parse_query("E(x,y)")
        right = parse_query("E(u,v)")
        minimized = minimize_ucq(UCQ([left, right]))
        assert len(minimized) == 1

    def test_incomparable_disjuncts_kept(self):
        a = parse_query("P(x)")
        b = parse_query("Q(x)")
        assert len(minimize_ucq(UCQ([a, b]))) == 2

    def test_is_subsumed_by_any(self):
        general = parse_query("E(x,y)")
        specific = parse_query("E(x,y), E(y,z)")
        assert is_subsumed_by_any(specific, [general])
        assert not is_subsumed_by_any(general, [specific])
