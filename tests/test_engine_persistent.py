"""Persistent delta-fed workers and sharded firing: the process-mode suite.

Extends the engine-equivalence suite over the two process backends —
legacy ``use_processes=True`` (per-round context pickles, now cached per
revision) and the persistent :class:`~repro.engine.workers.WorkerPool`
(replicas seeded once, per-round delta sync, sharded firing) — asserting
bit-identical instances, provenance order, timestamps, null names and
budget-stop positions against the sequential ``delta`` engine.

Process pools fork per run, so this file parametrizes over a reduced but
structurally diverse slice of the corpus workloads; the full workload
matrix runs thread-mode in ``test_engine_parallel.py``.
"""

from __future__ import annotations

import pickle

import pytest

from test_engine_parallel import VARIANTS, WORKLOADS, assert_bit_identical

from repro.chase import oblivious_chase, semi_oblivious_chase
from repro.corpus.generators import path_instance, tournament_instance
from repro.engine import (
    TRANSPORT_STATS,
    EngineConfig,
    RoundScheduler,
    WorkerPool,
    resolve_engine,
)
from repro.errors import ChaseError
from repro.logic.atoms import atom
from repro.logic.instances import Instance
from repro.logic.terms import FreshSupply
from repro.rewriting.datalog import semi_naive_closure
from repro.rules.parser import parse_rules

#: A structurally diverse slice of the shared workload list (existential
#: growth, datalog closure, merges, stratified random) — process pools
#: fork per run, so the full matrix stays in the thread-mode suite.
PROCESS_WORKLOAD_NAMES = (
    "path_succ",
    "tournament_tc",
    "merge_ladder_2",
    "datalog_grid_6",
    "random_0",
    "stratified_1",
)
PROCESS_WORKLOADS = [w for w in WORKLOADS if w[0] in PROCESS_WORKLOAD_NAMES]
PROCESS_IDS = [w[0] for w in PROCESS_WORKLOADS]

PROCESS_MODES = [
    ("legacy_processes", EngineConfig("parallel", workers=2, use_processes=True)),
    ("persistent", EngineConfig("persistent", workers=2)),
]


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------


class TestPersistentConfig:
    def test_persistent_name_normalizes_to_parallel_mode(self):
        config = resolve_engine("persistent")
        assert config.mode == "parallel"
        assert config.is_parallel
        assert config.is_persistent
        assert config.persistent_workers

    def test_explicit_knob_on_parallel_mode(self):
        config = EngineConfig("parallel", workers=3, persistent_workers=True)
        assert config.is_persistent
        assert config.with_workers(2).is_persistent

    def test_persistent_requires_parallel_mode(self):
        with pytest.raises(ChaseError, match="parallel-mode"):
            EngineConfig("delta", persistent_workers=True)

    def test_persistent_spelled_as_mode(self):
        config = EngineConfig("custom", mode="persistent", workers=2)
        assert config.mode == "parallel"
        assert config.is_persistent

    def test_adaptive_routing_requires_persistent_workers(self):
        config = EngineConfig("persistent", workers=2, adaptive_routing=True)
        assert config.adaptive_routing
        # The executor backends have no shard→worker placement to
        # balance, so the knob is rejected rather than silently ignored.
        with pytest.raises(ChaseError, match="adaptive_routing"):
            EngineConfig("parallel", workers=2, adaptive_routing=True)
        with pytest.raises(ChaseError, match="adaptive_routing"):
            EngineConfig(
                "parallel", workers=2, use_processes=True,
                adaptive_routing=True,
            )
        with pytest.raises(ChaseError, match="adaptive_routing"):
            EngineConfig("delta", adaptive_routing=True)


# ----------------------------------------------------------------------
# Cross-engine equivalence over the process backends
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,instance,rules,levels", PROCESS_WORKLOADS, ids=PROCESS_IDS
)
@pytest.mark.parametrize("variant,run", VARIANTS, ids=[v[0] for v in VARIANTS])
@pytest.mark.parametrize(
    "mode,config", PROCESS_MODES, ids=[m[0] for m in PROCESS_MODES]
)
class TestProcessModeEquivalence:
    def test_bit_identical_to_sequential_delta(
        self, mode, config, variant, run, name, instance, rules, levels
    ):
        reference = run(instance, rules, levels, "delta")
        result = run(instance, rules, levels, config)
        assert_bit_identical(result, reference)


class TestPersistentDeterminism:
    def test_worker_and_shard_counts_do_not_matter(self):
        rules = parse_rules(
            "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)"
        )
        make = lambda: tournament_instance(6, seed=1)
        reference = oblivious_chase(make(), rules, max_levels=3)
        for workers, shards in [(2, 2), (2, 8), (3, 5)]:
            config = EngineConfig(
                "persistent", workers=workers, shards=shards
            )
            run = oblivious_chase(make(), rules, max_levels=3, engine=config)
            assert_bit_identical(run, reference)

    def test_closure_on_persistent_pool(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        reference = semi_naive_closure(path_instance(12), rules, engine="delta")
        config = EngineConfig("persistent", workers=2)
        assert semi_naive_closure(path_instance(12), rules, engine=config) == reference


# ----------------------------------------------------------------------
# Budget stops: same partial result, same supply position
# ----------------------------------------------------------------------


class TestShardedFiringBudgetStop:
    RULES = "E(x,y) -> exists z. E(y,z)"

    def _run(self, engine, supply):
        return oblivious_chase(
            tournament_instance(6, seed=0),
            parse_rules(self.RULES),
            max_levels=5,
            max_atoms=40,
            supply=supply,
            engine=engine,
        )

    @pytest.mark.parametrize(
        "mode,config", PROCESS_MODES, ids=[m[0] for m in PROCESS_MODES]
    )
    def test_partial_result_and_supply_position_match(self, mode, config):
        sequential_supply = FreshSupply("_n")
        sharded_supply = FreshSupply("_n")
        reference = self._run("delta", sequential_supply)
        result = self._run(config, sharded_supply)
        assert not reference.terminated
        assert_bit_identical(result, reference)
        # The sharded round drew nulls speculatively and rewound: the next
        # name either supply hands out is the same.
        assert sharded_supply.position == sequential_supply.position
        assert sharded_supply.null() == sequential_supply.null()

    def test_semi_oblivious_claim_gate_with_sharded_firing(self):
        rules = parse_rules(
            "E(x,y) -> exists z. E(y,z)\nE(x,y), E(y,z) -> F(x,z)"
        )
        reference = semi_oblivious_chase(
            tournament_instance(6, seed=2), rules, max_levels=3
        )
        result = semi_oblivious_chase(
            tournament_instance(6, seed=2),
            rules,
            max_levels=3,
            engine=EngineConfig("persistent", workers=2),
        )
        assert_bit_identical(result, reference)


# ----------------------------------------------------------------------
# Supply position API
# ----------------------------------------------------------------------


class TestFreshSupplyRewind:
    def test_position_tracks_draws(self):
        supply = FreshSupply("_t")
        assert supply.position == 0
        names = [supply.null().name for _ in range(3)]
        assert names == ["_t0", "_t1", "_t2"]
        assert supply.position == 3

    def test_rewind_replays_names(self):
        supply = FreshSupply("_t")
        supply.nulls(4)
        supply.rewind(2)
        assert supply.position == 2
        assert supply.null().name == "_t2"

    def test_rewind_bounds_checked(self):
        supply = FreshSupply("_t")
        supply.nulls(2)
        with pytest.raises(ValueError):
            supply.rewind(3)
        with pytest.raises(ValueError):
            supply.rewind(-1)


# ----------------------------------------------------------------------
# WorkerPool unit behavior
# ----------------------------------------------------------------------


class TestWorkerPool:
    def test_size_validated(self):
        with pytest.raises(ChaseError):
            WorkerPool(0)

    def test_close_idempotent_and_lazy(self):
        pool = WorkerPool(2)
        pool.close()  # never started: no-op
        pool.close()
        assert not pool._started

    def test_seed_once_then_delta_sync(self):
        rules = tuple(parse_rules("E(x,y), E(y,z) -> F(x,z)"))
        instance = Instance([atom("E", "a", "b"), atom("E", "b", "c")])
        with WorkerPool(2) as pool:
            TRANSPORT_STATS.reset()
            first = pool.run_round(
                "enumerate", rules, instance, [instance.sorted_atoms(), []]
            )
            assert TRANSPORT_STATS.seeds == 1
            images = {
                image for per_rule in first for found in per_rule
                for image in found
            }
            assert len(images) == 1  # E(a,b), E(b,c) -> F(a,c)
            # Grow the instance; the next round ships only the delta and
            # does not reseed.
            instance.add(atom("E", "c", "d"))
            delta = [atom("E", "c", "d")]
            second = pool.run_round("enumerate", rules, instance, [delta, []])
            assert TRANSPORT_STATS.seeds == 1
            images = {
                image for per_rule in second for found in per_rule
                for image in found
            }
            assert len(images) == 1  # the new E(b,c), E(c,d) match

    def test_rule_change_reseeds(self):
        rules_a = tuple(parse_rules("E(x,y) -> F(x,y)"))
        rules_b = tuple(parse_rules("E(x,y) -> G(x,y)"))
        instance = Instance([atom("E", "a", "b")])
        with WorkerPool(1) as pool:
            TRANSPORT_STATS.reset()
            pool.run_round("derive", rules_a, instance, [[atom("E", "a", "b")]])
            pool.run_round("derive", rules_b, instance, [[atom("E", "a", "b")]])
            assert TRANSPORT_STATS.seeds == 2

    def test_worker_errors_surface_as_chase_error(self):
        with WorkerPool(1) as pool:
            pool._start()
            pool._send(0, ("enumerate", [], "not-an-atom-list"))
            with pytest.raises(ChaseError, match="worker 0 failed"):
                pool._receive(0)
        # The pool is still closeable after a failed round.

    def test_probe_round_splits_present_and_missing(self):
        rules = tuple(parse_rules("E(x,y), E(y,z) -> E(x,z)\nE(x,y) -> E(x,x)"))
        from repro.chase.trigger import triggers_of

        instance = Instance(
            [atom("E", "a", "b"), atom("E", "b", "c"), atom("E", "a", "a")]
        )
        triggers = list(triggers_of(instance, rules))
        tasks = [
            [
                (index, 0 if len(t.rule.body) == 2 else 1, t.mapping)
                for index, t in enumerate(triggers)
            ],
            [],
        ]
        with WorkerPool(2) as pool:
            replies = pool.probe_round(rules, instance, tasks)
        assert len(replies) == len(triggers)
        for index, present, missing in replies:
            head = triggers[index].rule.instantiate_head(triggers[index].mapping)
            assert set(present) | set(missing) == head
            assert all(a in instance for a in present)
            assert all(a not in instance for a in missing)
        # E(a,b),E(b,c) -> E(a,c) is missing; E(a,b) -> E(a,a) is present.
        by_index = {i: (p, m) for i, p, m in replies}
        statuses = {
            (triggers[i].rule.head, triggers[i].image()): bool(m)
            for i, (p, m) in by_index.items()
        }
        assert True in statuses.values() and False in statuses.values()

    def test_probe_round_syncs_replicas_like_run_round(self):
        rules = tuple(parse_rules("E(x,y), E(y,z) -> E(x,z)"))
        from repro.chase.trigger import triggers_of

        instance = Instance([atom("E", "a", "b"), atom("E", "b", "c")])
        with WorkerPool(2) as pool:
            pool.run_round(
                "enumerate", rules, instance, [instance.sorted_atoms(), []]
            )
            # Grow the instance: the probe must see the new atom (its
            # head is now present) without a reseed.
            instance.add(atom("E", "a", "c"))
            TRANSPORT_STATS.reset()
            (trigger,) = [
                t for t in triggers_of(instance, rules)
                if t.rule.instantiate_head(t.mapping) == {atom("E", "a", "c")}
            ]
            replies = pool.probe_round(
                rules, instance, [[(0, 0, trigger.mapping)], []]
            )
            assert TRANSPORT_STATS.seeds == 0
            ((index, present, missing),) = replies
            assert index == 0
            assert set(present) == {atom("E", "a", "c")} and missing == ()

    def test_fire_without_prior_seed(self):
        # Firing ships the round's distinct rules, so it works on a
        # fresh pool (enumeration may have run inline all along).
        rules = list(parse_rules("E(x,y) -> exists z. E(y,z)"))
        from repro.chase.trigger import triggers_of

        instance = Instance([atom("E", "a", "b")])
        (trigger,) = list(triggers_of(instance, rules))
        supply = FreshSupply("_w")
        existential_map = {
            v: supply.null() for v in trigger.rule.existential_order()
        }
        with WorkerPool(2) as pool:
            pairs = pool.fire(
                [trigger.rule],
                [[(0, 0, trigger.mapping, existential_map)], []],
            )
        ((index, atoms),) = pairs
        expected, _ = trigger.output(FreshSupply("_w"))
        assert index == 0 and atoms == expected


# ----------------------------------------------------------------------
# Failing workers: reply drain, broken-pool teardown
# ----------------------------------------------------------------------


class TestWorkerPoolFailureTeardown:
    RULES = tuple(parse_rules("E(x,y) -> F(x,y)"))

    def _mapping(self):
        from repro.chase.trigger import triggers_of

        instance = Instance([atom("E", "a", "b")])
        (trigger,) = list(triggers_of(instance, list(self.RULES)))
        return trigger.mapping

    def _fire_message(self, pool, tasks):
        # A valid wire-format fire message for a fresh pool: encode the
        # tasks first, then cut the segment from mark (0, 0) so it covers
        # every symbol the buffer references.
        tasks_buf = pool._encoder.encode_fire_tasks(self.RULES, tasks)
        segment = pool._encoder.segment(0, 0)
        return ("fire", segment, self.RULES, tasks_buf)

    def test_failed_reply_drains_survivors_and_marks_broken(self):
        # Worker 1 errors mid-round (its task buffer is not a valid id
        # stream); workers 0 and 2 reply normally.  The gather must drain
        # *all* outstanding replies before raising, so no pipe is left
        # holding a stale round reply, and the pool must be marked broken.
        mapping = self._mapping()
        pool = WorkerPool(3)
        pool._start()
        healthy = self._fire_message(pool, [(0, 0, mapping, {})])
        messages = [
            healthy,
            ("fire", None, self.RULES, b"bad"),
            healthy,
        ]
        with pytest.raises(ChaseError, match="worker 1 failed"):
            pool._broadcast_and_gather(messages)
        assert pool.broken
        # Every reply was drained: no pipe has pending bytes that the
        # stop handshake could misread as its ack.
        assert not any(conn.poll(0.05) for conn in pool._connections)
        processes = list(pool._processes)
        pool.close()
        assert not pool._started
        assert not any(p.is_alive() for p in processes)

    def test_broken_pool_refuses_further_rounds(self):
        pool = WorkerPool(2)
        pool._start()
        with pytest.raises(ChaseError, match="worker 0 failed"):
            pool._broadcast_and_gather(
                [("fire", self.RULES, ["bad-task"]), None]
            )
        assert pool.broken
        with pytest.raises(ChaseError, match="broken"):
            pool.run_round(
                "enumerate", self.RULES, Instance([atom("E", "a", "b")]), [[]]
            )
        pool.close()

    def test_dead_worker_at_send_time_drains_sent_replies(self):
        # Worker 1's process dies before the round; the send fails, the
        # already-sent worker 0 is still drained, and the failure
        # surfaces as a ChaseError with the pool marked broken.
        mapping = self._mapping()
        pool = WorkerPool(2)
        pool._start()
        pool._processes[1].terminate()
        pool._processes[1].join(timeout=5.0)
        healthy = self._fire_message(pool, [(0, 0, mapping, {})])
        with pytest.raises(ChaseError, match="died mid-round"):
            pool._broadcast_and_gather([healthy, healthy])
        assert pool.broken
        # The surviving worker's reply was drained (the dead worker's
        # pipe stays "readable" — it reports EOF — so only the survivor
        # is checked).
        assert not pool._connections[0].poll(0.05)
        pool.close()
        assert not pool._started

    def test_close_after_failed_round_completes_quickly(self):
        # A broken pool skips the stop handshake entirely: close() tears
        # the pipes down and the workers exit on EOF.
        pool = WorkerPool(2)
        pool._start()
        with pytest.raises(ChaseError):
            pool._broadcast_and_gather(
                [("fire", self.RULES, ["bad"]), ("fire", self.RULES, ["bad"])]
            )
        import time

        start = time.perf_counter()
        pool.close()
        assert time.perf_counter() - start < 5.0
        assert pool._connections == [] and pool._processes == []
        # A closed broken pool still refuses reuse.
        with pytest.raises(ChaseError, match="broken"):
            pool._start()


# ----------------------------------------------------------------------
# Legacy process mode: context blob reuse
# ----------------------------------------------------------------------


class TestContextBlobReuse:
    def test_same_revision_rounds_share_one_pickle(self):
        config = EngineConfig("parallel", workers=2, use_processes=True)
        rules = list(parse_rules("E(x,y), E(y,z) -> F(x,z)"))
        instance = Instance(
            [atom("E", f"x{i}", f"x{i + 1}") for i in range(8)]
        )
        delta = instance.sorted_atoms()
        with RoundScheduler(config) as scheduler:
            TRANSPORT_STATS.reset()
            first = scheduler.enumerate_images(instance, rules, delta)
            assert TRANSPORT_STATS.context_pickles == 1
            # Unchanged instance + rules: the blob is reused verbatim.
            second = scheduler.enumerate_images(instance, rules, delta)
            assert TRANSPORT_STATS.context_pickles == 1
            assert first == second
            # A mutation bumps the revision and invalidates the cache
            # (queried directly: a 1-atom delta round would run inline
            # without pickling at all).
            instance.add(atom("E", "y0", "y1"))
            scheduler._context_blob(rules, instance)
            assert TRANSPORT_STATS.context_pickles == 2

    def test_blob_content_roundtrips(self):
        config = EngineConfig("parallel", workers=2, use_processes=True)
        rules = tuple(parse_rules("E(x,y) -> F(x,y)"))
        instance = Instance([atom("E", "a", "b")])
        scheduler = RoundScheduler(config)
        try:
            blob = scheduler._context_blob(rules, instance)
            assert scheduler._context_blob(rules, instance) is blob
            loaded_rules, loaded_instance = pickle.loads(blob)
            assert loaded_rules == rules
            assert loaded_instance == instance
        finally:
            scheduler.close()
