"""Fixture tests for the stats-registry pass (S501).

Module-global ``*_STATS`` counters under ``src/`` must be the four
registered groups of ``repro.obs.default_registry``; anything else
escapes the registry's reset/collect/snapshot surface.
"""

import textwrap

from repro.checks.base import SourceModule
from repro.checks.stats import StatsRegistryPass

PASS = StatsRegistryPass()


def run(source, rel):
    module = SourceModule.from_source(textwrap.dedent(source), rel)
    live, allowed = [], []
    for finding in PASS.run(module):
        (allowed if module.allowed(finding) else live).append(finding)
    return live, allowed


def rules(findings):
    return sorted(f.rule for f in findings)


def test_unregistered_stats_global_is_flagged():
    live, _ = run(
        """
        class FooStats:
            pass

        FOO_STATS = FooStats()
        """,
        rel="src/repro/engine/foo.py",
    )
    assert rules(live) == ["S501"]


def test_stats_suffix_assignment_is_flagged_even_without_class():
    live, _ = run(
        """
        QUEUE_STATS = {"pushes": 0, "pops": 0}
        """,
        rel="src/repro/engine/queue.py",
    )
    assert rules(live) == ["S501"]


def test_registered_globals_are_allowlisted():
    live, _ = run(
        """
        class ServingStats:
            pass

        SERVING_STATS = ServingStats()
        """,
        rel="src/repro/serving/stats.py",
    )
    assert live == []


def test_allow_marker_suppresses_justified_global():
    live, allowed = run(
        """
        # checks: allow-file[S501] -- scratch module used only by the
        # migration script; deleted once the registry grows the group.
        TMP_STATS = {}
        """,
        rel="src/repro/engine/tmp.py",
    )
    assert live == []
    assert rules(allowed) == ["S501"]


def test_pass_is_scoped_to_src():
    module = SourceModule.from_source(
        "BENCH_STATS = {}\n", "benchmarks/bench_example.py"
    )
    assert not PASS.wants(module)
    module = SourceModule.from_source(
        "SELF_STATS = {}\n", "src/repro/checks/selfref.py"
    )
    assert not PASS.wants(module)
