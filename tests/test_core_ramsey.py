"""Unit tests for the Ramsey machinery (Theorem 7, Proposition 41, §6)."""

from repro.core.egraph import egraph
from repro.core.ramsey import (
    find_monochromatic_tournament,
    paper_bound,
    ramsey_upper_bound,
    transitive_subtournament,
    verify_ramsey_on_tournament,
)
from repro.core.tournament import is_tournament
from repro.corpus.generators import edge_coloring, tournament_instance


class TestUpperBounds:
    def test_trivial_sizes(self):
        assert ramsey_upper_bound() == 1
        assert ramsey_upper_bound(1, 1) == 1
        assert ramsey_upper_bound(5) == 5

    def test_exact_small_values(self):
        assert ramsey_upper_bound(3, 3) == 6
        assert ramsey_upper_bound(3, 4) == 9
        assert ramsey_upper_bound(4, 4) == 18

    def test_binomial_bound(self):
        # R(3, 6) ≤ C(7, 2) = 21 (not in the exact table).
        assert ramsey_upper_bound(3, 6) == 21

    def test_multicolor_merge_recursion(self):
        # R(3,3,3) ≤ R(3, R(3,3)) = R(3, 6) = 21.
        assert ramsey_upper_bound(3, 3, 3) == 21

    def test_monotone_in_arguments(self):
        assert ramsey_upper_bound(3, 3) <= ramsey_upper_bound(3, 4)
        assert ramsey_upper_bound(4, 4) <= ramsey_upper_bound(4, 4, 4)

    def test_paper_bound_section6(self):
        # R(4) with one query: 4; with two queries: R(4,4) = 18.
        assert paper_bound(1) == 4
        assert paper_bound(2) == 18
        assert paper_bound(0) == 1


class TestMonochromaticExtraction:
    def test_single_color_whole_tournament(self):
        inst = tournament_instance(5, seed=3)
        graph = egraph(inst)
        result = find_monochromatic_tournament(
            graph, lambda u, v: 0, size=5
        )
        assert result is not None
        color, vertices = result
        assert color == 0 and len(vertices) == 5

    def test_no_large_monochromatic_in_small(self):
        inst = tournament_instance(4, seed=4)
        graph = egraph(inst)
        coloring = edge_coloring(inst, n_colors=4, seed=5)
        result = find_monochromatic_tournament(graph, coloring, size=4)
        # With 4 colors over only 6 pairs a monochromatic K4 may or may not
        # exist — but a monochromatic K2 (single edge) always does.
        assert find_monochromatic_tournament(graph, coloring, size=2)

    def test_extracted_set_is_tournament(self):
        inst = tournament_instance(8, seed=6)
        graph = egraph(inst)
        coloring = edge_coloring(inst, n_colors=2, seed=7)
        result = find_monochromatic_tournament(graph, coloring, size=3)
        if result is not None:
            _, vertices = result
            assert is_tournament(graph, vertices)

    def test_theorem7_on_r33_boundary(self):
        # Any 2-coloring of a 6-tournament has a monochromatic triangle.
        for seed in range(5):
            inst = tournament_instance(6, seed=seed)
            graph = egraph(inst)
            coloring = edge_coloring(inst, n_colors=2, seed=seed + 100)
            assert verify_ramsey_on_tournament(
                graph, coloring, color_count=2, size=3
            )

    def test_below_bound_vacuous(self):
        inst = tournament_instance(3, seed=8)
        graph = egraph(inst)
        coloring = edge_coloring(inst, n_colors=2, seed=9)
        assert verify_ramsey_on_tournament(
            graph, coloring, color_count=2, size=3
        )


class TestTransitiveSubtournament:
    def test_chain_is_transitive(self):
        for seed in range(4):
            inst = tournament_instance(8, seed=seed)
            graph = egraph(inst)
            chain = transitive_subtournament(graph)
            assert len(chain) >= 3  # 8 ≥ 2^(3-1) guarantees ≥ 3... and more
            for i in range(len(chain)):
                for j in range(i + 1, len(chain)):
                    assert graph.has_edge(chain[i], chain[j])
