"""Unit tests for the Property (p) verifier and timestamp structure."""

from repro.core.theorem import check_property_p
from repro.core.timestamps import (
    datalog_factorization_equivalent,
    existential_chase,
    existential_chase_is_dag,
    timestamps_increase_along_edges,
)
from repro.corpus.examples import (
    example_1,
    example_1_bdd,
    infinite_path,
    tournament_builder,
)
from repro.rules.parser import parse_rules
from repro.surgery.streamline import streamline


class TestPropertyP:
    def test_example1_refutation_pattern_without_bdd(self):
        """Example 1 grows tournaments with no loop — allowed because it is
        NOT bdd; the report flags the pattern."""
        entry = example_1()
        report = check_property_p(entry.rules, entry.instance, max_levels=5)
        assert report.tournaments_growing
        assert not report.loop_entailed
        assert not report.consistent_with_property_p

    def test_example1_bdd_is_consistent(self):
        entry = example_1_bdd()
        report = check_property_p(entry.rules, entry.instance, max_levels=4)
        assert report.loop_entailed
        assert report.consistent_with_property_p

    def test_tournament_builder_loop_level(self):
        entry = tournament_builder()
        report = check_property_p(entry.rules, max_levels=4)
        assert report.loop_entailed
        assert report.max_tournament >= 3

    def test_infinite_path_caps_at_two(self):
        entry = infinite_path()
        report = check_property_p(entry.rules, entry.instance, max_levels=5)
        assert report.max_tournament == 2
        assert not report.loop_entailed
        assert report.consistent_with_property_p

    def test_terminating_chase_always_consistent(self):
        rules = parse_rules("P(x,y) -> exists z. Q(y,z)")
        report = check_property_p(rules, max_levels=5)
        assert report.terminated
        assert report.consistent_with_property_p

    def test_summary_row_shape(self):
        entry = infinite_path()
        report = check_property_p(entry.rules, entry.instance, max_levels=4)
        row = report.summary_row()
        assert len(row) == 4


class TestTimestampStructure:
    def test_observation35_on_streamlined_builder(self):
        rules = streamline(tournament_builder().rules)
        result = existential_chase(rules, max_levels=4)
        assert existential_chase_is_dag(result)
        assert timestamps_increase_along_edges(result)

    def test_observation35_on_forward_existential_rules(self):
        rules = parse_rules(
            """
            top -> exists x. A(x)
            A(x) -> exists y. E(x,y)
            E(x,y) -> exists z. E(y,z)
            """
        )
        result = existential_chase(rules, max_levels=4)
        assert existential_chase_is_dag(result)
        assert timestamps_increase_along_edges(result)

    def test_non_forward_rules_can_cycle(self):
        # A backward head breaks the DAG property — the checker sees it.
        rules = parse_rules(
            """
            top -> exists x, y. E(x,y)
            E(x,y) -> exists z. E(z,x), E(x,z)
            """
        )
        result = existential_chase(rules, max_levels=3)
        assert not timestamps_increase_along_edges(result)

    def test_lemma33_on_builder(self):
        entry = tournament_builder()
        assert datalog_factorization_equivalent(
            entry.rules, max_levels=3, datalog_levels=6
        )

    def test_lemma33_needs_quickness(self):
        """Streamlining alone is not quick, and Lemma 33 can fail on its
        chase prefixes — the reason Section 4.4 adds body rewriting."""
        rules = streamline(tournament_builder().rules)
        assert not datalog_factorization_equivalent(
            rules, max_levels=4, datalog_levels=8
        )

    def test_lemma33_on_regal_builder(self, builder_regal):
        """On the regal (quick) rule set the factorization holds."""
        assert datalog_factorization_equivalent(
            builder_regal, max_levels=3, datalog_levels=8
        )
