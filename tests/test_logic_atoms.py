"""Unit tests for atoms and the convenience constructors."""

import pytest

from repro.errors import ArityError
from repro.logic.atoms import TOP_ATOM, Atom, atom, atoms_over, edge, predicates_of
from repro.logic.predicates import EDGE, TOP, Predicate
from repro.logic.terms import Constant, Null, Variable


class TestConstruction:
    def test_arity_checked(self):
        with pytest.raises(ArityError):
            Atom(Predicate("P", 2), ("x",))

    def test_nullary_atom(self):
        p = Atom(Predicate("P", 0), ())
        assert str(p) == "P"

    def test_string_coercion_in_args(self):
        a = atom("E", "x", "Alice")
        assert a.args == (Variable("x"), Constant("Alice"))

    def test_edge_uses_fixed_predicate(self):
        assert edge("x", "y").predicate == EDGE

    def test_top_atom(self):
        assert TOP_ATOM.predicate == TOP
        assert TOP_ATOM.args == ()


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert edge("x", "y") == edge("x", "y")
        assert hash(edge("x", "y")) == hash(edge("x", "y"))
        assert edge("x", "y") != edge("y", "x")

    def test_ordering_is_total_and_stable(self):
        atoms = [edge("b", "a"), edge("a", "b"), atom("A", "x")]
        assert sorted(atoms) == sorted(sorted(atoms))

    def test_str_rendering(self):
        assert str(edge("x", "y")) == "E(x, y)"


class TestViews:
    def test_variable_constant_null_partition(self):
        a = Atom(
            Predicate("T", 3), (Variable("x"), Constant("c"), Null("n"))
        )
        assert a.variables() == {Variable("x")}
        assert a.constants() == {Constant("c")}
        assert a.nulls() == {Null("n")}
        assert a.active_domain() == {
            Variable("x"), Constant("c"), Null("n")
        }

    def test_contains(self):
        assert edge("x", "y").contains(Variable("x"))
        assert not edge("x", "y").contains(Variable("z"))

    def test_is_loop(self):
        assert edge("x", "x").is_loop
        assert not edge("x", "y").is_loop
        assert not atom("P", "x").is_loop


class TestApply:
    def test_apply_replaces_mapped_terms(self):
        mapped = edge("x", "y").apply({Variable("x"): Constant("a")})
        assert mapped == edge(Constant("a"), "y")

    def test_apply_leaves_unmapped(self):
        assert edge("x", "y").apply({}) == edge("x", "y")

    def test_apply_can_rename_constants(self):
        # atom.apply is a raw positional replacement (used by Definition 12).
        mapped = edge(Constant("a"), "y").apply(
            {Constant("a"): Variable("v")}
        )
        assert mapped == edge(Variable("v"), "y")


class TestHelpers:
    def test_atoms_over_filters_by_signature(self):
        atoms = [edge("x", "y"), atom("P", "x")]
        assert atoms_over(atoms, [EDGE]) == {edge("x", "y")}

    def test_predicates_of(self):
        atoms = [edge("x", "y"), atom("P", "x")]
        assert predicates_of(atoms) == {EDGE, Predicate("P", 1)}
