"""Unit tests for the breadth-first rewriter and bdd certificates."""

import pytest

from repro.errors import RewritingBudgetExceeded
from repro.queries.entailment import entails_ucq
from repro.rewriting.bdd import (
    cross_validate_rewriting,
    empirical_bdd_constant,
    ucq_rewritability_certificate,
)
from repro.rewriting.rewriter import rewrite, rewrite_ucq
from repro.queries.ucq import UCQ
from repro.rules.parser import parse_instance, parse_query, parse_rules


class TestFixpoints:
    def test_linear_rule_fixpoint(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        result = rewrite(parse_query("E(x,y), E(y,z)"), rules, max_depth=8)
        assert result.complete

    def test_loop_query_unrewritable_by_forward_rule(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        result = rewrite(parse_query("E(x,x)"), rules, max_depth=8)
        assert result.complete
        assert len(result.ucq) == 1  # only the query itself

    def test_transitivity_never_reaches_fixpoint(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        result = rewrite(
            parse_query("E(x,y)", answers=("x", "y")), rules, max_depth=4
        )
        assert not result.complete

    def test_strict_budget_raises(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        with pytest.raises(RewritingBudgetExceeded):
            rewrite(
                parse_query("E(x,y)", answers=("x", "y")),
                rules,
                max_depth=3,
                strict=True,
            )

    def test_datalog_projection_rewritten(self):
        rules = parse_rules("P(x,y) -> E(x,y)")
        result = rewrite(parse_query("E(u,v)"), rules, max_depth=4)
        assert result.complete
        assert len(result.ucq) == 2

    def test_bdd_variant_loop_rewriting(self):
        # Paper Section 1: with the bdd variant, the loop rewrites to
        # "some edge exists".
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        result = rewrite(parse_query("E(x,x)"), rules, max_depth=8)
        assert result.complete
        rewriting = result.ucq
        assert entails_ucq(parse_instance("E(a,b)"), rewriting)
        assert not entails_ucq(parse_instance("P(a)"), rewriting)

    def test_rewrite_ucq_merges(self):
        rules = parse_rules("P(x,y) -> E(x,y)")
        query = UCQ(
            [parse_query("E(u,v)"), parse_query("P(u,v)")], answers=()
        )
        result = rewrite_ucq(query, rules, max_depth=4)
        assert result.complete


class TestBddCertificates:
    def test_certificate_for_linear(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        cert = ucq_rewritability_certificate(
            parse_query("E(x,y), E(y,z)"), rules
        )
        assert cert is not None
        assert cert.fixpoint_depth >= 1

    def test_no_certificate_for_transitivity(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        cert = ucq_rewritability_certificate(
            parse_query("E(x,y)", answers=("x", "y")),
            rules,
            max_depth=4,
        )
        assert cert is None

    def test_cross_validation_agrees(self):
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        query = parse_query("E(x,x)")
        cert = ucq_rewritability_certificate(query, rules)
        corpus = [
            parse_instance("E(a,b)"),
            parse_instance("E(a,a)"),
            parse_instance("P(a)"),
            parse_instance("E(a,b), E(c,d)"),
            parse_instance(""),
        ]
        mismatches = cross_validate_rewriting(
            query, cert.rewriting, rules, corpus, max_levels=4
        )
        assert mismatches == []

    def test_empirical_bdd_constant(self):
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        constant = empirical_bdd_constant(
            parse_query("E(x,x)"),
            rules,
            [parse_instance("E(a,b)")],
            max_levels=4,
        )
        # The loop appears at chase level 2 from a single edge.
        assert constant == 2


class TestSoundness:
    def test_every_disjunct_entails_original(self):
        """Soundness: each rewriting disjunct, materialized as an instance,
        makes the chase entail the original query."""
        from repro.chase.oblivious import oblivious_chase
        from repro.logic.instances import Instance
        from repro.logic.terms import Null
        from repro.queries.entailment import entails_cq

        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        query = parse_query("E(x,x)")
        result = rewrite(query, rules, max_depth=6)
        for disjunct in result.ucq:
            # Freeze the disjunct's variables into nulls.
            freeze = {
                v: Null(f"_f_{v.name}") for v in disjunct.variables()
            }
            inst = Instance(
                (a.apply(freeze) for a in disjunct.atoms), add_top=True
            )
            chased = oblivious_chase(inst, rules, max_levels=4)
            assert entails_cq(chased.instance, query), (
                f"unsound disjunct {disjunct}"
            )
