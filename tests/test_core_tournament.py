"""Unit tests for E-graphs, tournaments and Loop_E (Section 3)."""

import networkx as nx

from repro.core.egraph import (
    egraph,
    has_loop,
    is_dag,
    loops_of,
    undirected_view,
)
from repro.core.tournament import (
    entails_loop,
    find_tournament,
    is_growing,
    is_tournament,
    max_tournament,
    max_tournament_size,
    tournament_edges,
    tournament_growth,
)
from repro.corpus.generators import (
    cycle_instance,
    path_instance,
    tournament_instance,
)
from repro.logic.terms import Constant
from repro.rules.parser import parse_instance

C = Constant


class TestEGraph:
    def test_only_e_atoms_kept(self):
        inst = parse_instance("E(a,b), P(c), F(a,c)")
        graph = egraph(inst)
        assert graph.number_of_edges() == 1

    def test_loop_detection(self):
        assert has_loop(egraph(parse_instance("E(a,a)")))
        assert not has_loop(egraph(parse_instance("E(a,b)")))

    def test_loops_of(self):
        graph = egraph(parse_instance("E(a,a), E(b,c)"))
        assert loops_of(graph) == {C("a")}

    def test_is_dag(self):
        assert is_dag(egraph(path_instance(3)))
        assert not is_dag(egraph(cycle_instance(3)))

    def test_undirected_view_drops_loops(self):
        graph = egraph(parse_instance("E(a,a), E(a,b)"))
        undirected = undirected_view(graph)
        assert undirected.number_of_edges() == 1


class TestTournaments:
    def test_complete_tournament_detected(self):
        inst = tournament_instance(5, seed=1)
        graph = egraph(inst)
        assert max_tournament_size(graph) == 5
        assert is_tournament(graph, max_tournament(graph))

    def test_path_tournament_caps_at_two(self):
        assert max_tournament_size(egraph(path_instance(6))) == 2

    def test_two_cycle_is_tournament(self):
        graph = egraph(parse_instance("E(a,b), E(b,a)"))
        assert is_tournament(graph, [C("a"), C("b")])

    def test_missing_pair_not_tournament(self):
        graph = egraph(parse_instance("E(a,b), E(b,c)"))
        assert not is_tournament(graph, [C("a"), C("b"), C("c")])

    def test_repeated_vertex_not_tournament(self):
        graph = egraph(parse_instance("E(a,b)"))
        assert not is_tournament(graph, [C("a"), C("a")])

    def test_find_tournament_of_size(self):
        inst = tournament_instance(6, seed=2)
        graph = egraph(inst)
        found = find_tournament(graph, 4)
        assert found is not None and len(found) == 4
        assert is_tournament(graph, found)

    def test_find_tournament_absent(self):
        graph = egraph(path_instance(4))
        assert find_tournament(graph, 3) is None

    def test_empty_graph(self):
        graph = nx.DiGraph()
        assert max_tournament_size(graph) == 0

    def test_tournament_edges(self):
        inst = tournament_instance(4, seed=0)
        vertices = [C("C0"), C("C1"), C("C2"), C("C3")]
        edges = tournament_edges(inst, vertices)
        assert len(edges) >= 6  # one per unordered pair at least


class TestQueries:
    def test_entails_loop(self):
        assert entails_loop(parse_instance("E(a,a)"))
        assert not entails_loop(parse_instance("E(a,b), E(b,a)"))

    def test_tournament_growth_series(self):
        prefixes = [path_instance(1), tournament_instance(3, seed=0),
                    tournament_instance(4, seed=0)]
        sizes = tournament_growth(prefixes)
        assert sizes == [2, 3, 4]

    def test_is_growing(self):
        assert is_growing([1, 2, 3, 4, 5])
        assert not is_growing([2, 2, 2, 2, 2])
        assert not is_growing([1, 2])  # too short to conclude
