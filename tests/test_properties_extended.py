"""Second round of property-based tests: round-trips and engine agreement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.atoms import Atom
from repro.logic.predicates import Predicate
from repro.logic.terms import Variable
from repro.rules.parser import parse_rule
from repro.rules.rule import Rule


variable_names = st.sampled_from(["x", "y", "z", "u", "v", "w"])
predicate_names = st.sampled_from(["E", "F", "P", "Q"])


@st.composite
def datalog_safe_rules(draw):
    """Random rules whose head variables all occur in the body (plus
    optionally fresh existential variables), so they are well-formed."""
    body_size = draw(st.integers(min_value=1, max_value=3))
    body = []
    body_vars = []
    for _ in range(body_size):
        name = draw(predicate_names)
        arity = draw(st.integers(min_value=1, max_value=2))
        args = [Variable(draw(variable_names)) for _ in range(arity)]
        body_vars.extend(args)
        body.append(Atom(Predicate(name, arity), args))
    head_size = draw(st.integers(min_value=1, max_value=2))
    existentials = draw(st.booleans())
    head = []
    for index in range(head_size):
        name = draw(predicate_names)
        arity = draw(st.integers(min_value=1, max_value=2))
        args = []
        for position in range(arity):
            if existentials and position == arity - 1:
                args.append(Variable(f"fresh{index}"))
            else:
                args.append(
                    body_vars[
                        draw(
                            st.integers(
                                min_value=0, max_value=len(body_vars) - 1
                            )
                        )
                    ]
                )
        head.append(Atom(Predicate(name, arity), args))
    return Rule(body, head)


class TestParserRoundTrip:
    @given(datalog_safe_rules())
    @settings(max_examples=100, deadline=None)
    def test_rule_str_parses_back(self, rule):
        assert parse_rule(str(rule)) == rule

    @given(datalog_safe_rules())
    @settings(max_examples=50, deadline=None)
    def test_frontier_existential_partition(self, rule):
        frontier = rule.frontier()
        existential = rule.existential_variables()
        assert not (frontier & existential)
        assert frontier | existential == rule.head_variables()


class TestEngineAgreement:
    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_semi_naive_equals_chase_on_random_graphs(self, size, seed):
        from repro.chase.oblivious import oblivious_chase
        from repro.corpus.generators import random_digraph_instance
        from repro.rewriting.datalog import semi_naive_closure
        from repro.rules.parser import parse_rules

        rules = parse_rules(
            """
            E(x,y), E(y,z) -> E(x,z)
            E(x,y) -> R(y,x)
            """
        )
        inst = random_digraph_instance(size, 0.3, seed=seed)
        closure = semi_naive_closure(inst, rules)
        chased = oblivious_chase(inst, rules, max_levels=12)
        assert chased.terminated
        assert closure == chased.instance

    @given(st.integers(min_value=0, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_semi_oblivious_hom_equivalent(self, seed):
        from repro.chase.oblivious import oblivious_chase
        from repro.chase.semi_oblivious import semi_oblivious_chase
        from repro.corpus.generators import random_digraph_instance
        from repro.logic.homomorphisms import homomorphically_equivalent
        from repro.rules.parser import parse_rules

        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = random_digraph_instance(3, 0.5, seed=seed)
        semi = semi_oblivious_chase(inst, rules, max_levels=2)
        full = oblivious_chase(inst, rules, max_levels=2)
        assert homomorphically_equivalent(semi.instance, full.instance)


class TestReificationProperties:
    @given(st.integers(min_value=0, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_reified_instance_is_binary_and_query_preserving(self, seed):
        from repro.corpus.generators import random_instance
        from repro.logic.predicates import Predicate
        from repro.queries.cq import ConjunctiveQuery
        from repro.queries.entailment import entails_cq
        from repro.surgery.reification import reify_instance, reify_query
        from repro.logic.terms import Variable

        signature = [Predicate("T", 3), Predicate("E", 2)]
        inst = random_instance(signature, n_terms=3, n_atoms=5, seed=seed)
        reified = reify_instance(inst)
        assert reified.is_binary()
        # Every original wide atom, read as a query, survives reification.
        for atom in inst:
            if atom.predicate.arity != 3:
                continue
            variables = [Variable(f"q{i}") for i in range(3)]
            query = ConjunctiveQuery(
                [Atom(atom.predicate, variables)], ()
            )
            assert entails_cq(reified, reify_query(query))


class TestSubsumptionProperties:
    @given(datalog_safe_rules(), datalog_safe_rules())
    @settings(max_examples=40, deadline=None)
    def test_subsumption_transitive_via_bodies(self, first, second):
        from repro.queries.cq import ConjunctiveQuery
        from repro.queries.minimization import subsumes

        left = ConjunctiveQuery(first.body, ())
        right = ConjunctiveQuery(second.body, ())
        # Reflexivity and antisymmetry-up-to-equivalence sanity.
        assert subsumes(left, left)
        if subsumes(left, right) and subsumes(right, left):
            # Equivalent queries must subsume in both directions — the
            # relation restricted to the pair is symmetric; nothing more
            # to assert, but the calls must not crash or disagree.
            assert True
