"""Differential answer matrix for the serving front door.

Every strategy of :func:`repro.serving.answer` must tell the same story
as the naive reference — a full-saturation oblivious chase followed by a
single entailment probe (the pre-serving ``certain_answer`` recipe) —
on the bdd corpus, across engines and worker counts, including
budget-stopped runs where only a ``sound`` verdict is available.
"""

from __future__ import annotations

import warnings

import pytest

from repro.chase.oblivious import oblivious_chase
from repro.corpus.examples import bdd_corpus, full_corpus
from repro.engine.config import EngineConfig
from repro.logic.instances import Instance
from repro.logic.terms import Constant
from repro.queries.entailment import certain_answer, entails_cq
from repro.rules.parser import parse_instance, parse_query, parse_rules
from repro.serving import (
    SERVING_STATS,
    answer,
    goal_predicates,
    relevant_closure,
    relevant_rules,
)

REF_LEVELS = 4

#: (corpus entry name, query text, ground-truth certain answer).  Every
#: True case is witnessed within REF_LEVELS chase rounds, so the naive
#: reference at that depth is conclusive and all strategies must agree.
CASES = [
    ("example1_bdd", "E(u,v), E(v,u)", True),
    ("example1_bdd", "Z(u)", False),
    ("tournament_builder", "E(x,y)", True),
    ("tournament_builder", "Z(u)", False),
    ("infinite_path", "E(x1,x2), E(x2,x3), E(x3,x4)", True),
    ("infinite_path", "E(x,x)", False),
    ("two_relation_linear", "P(x,y), Q(y,z)", True),
    ("two_relation_linear", "Q(x,x)", False),
    ("dense_overlay", "F(x,y), F(y,z)", True),
    ("dense_overlay", "F(x,x)", False),
    ("wide_signature", "E(x,y), E(y,z)", True),
    ("wide_signature", "E(x,x)", False),
    ("datalog_chain_3", "P3(x,y)", True),
    ("datalog_chain_3", "P3(x,x)", False),
    ("sticky_pair", "T(y), R(y,w)", True),
    ("sticky_pair", "S(x,x)", False),
    ("bowtie_merge", "D(x,z), E(y,z)", True),
    ("bowtie_merge", "D(x,x)", False),
    ("guarded_triangle", "E(c,w)", True),
    ("guarded_triangle", "E(x,y), E(y,z)", False),
    ("backward_growth", "E(u,v), E(v,w)", True),
    ("backward_growth", "E(x,x)", False),
]

#: Modest rewriting budgets keep non-FUS entries (the composition rule
#: of example1_bdd diverges under piece-rewriting) fast; a budget stop
#: there downgrades the verdict to "sound", which the assertions allow.
REWRITE_BUDGETS = dict(max_rewrite_depth=6, max_disjuncts=256, max_cq_size=12)

ENTRIES = {entry.name: entry for entry in full_corpus()}

ENGINES = [
    ("delta", "delta"),
    ("naive", "naive"),
    ("parallel_w1", EngineConfig("parallel", workers=1)),
    ("parallel_w3", EngineConfig("parallel", workers=3)),
    ("persistent_w1", EngineConfig("persistent", workers=1)),
    ("persistent_w3", EngineConfig("persistent", workers=3)),
]


def naive_reference(entry, query, bindings=(), max_levels=REF_LEVELS):
    """The pre-serving recipe: saturate to depth, then probe once."""
    chased = oblivious_chase(
        entry.instance, entry.rules, max_levels=max_levels
    )
    return entails_cq(chased.instance, query, bindings), chased


class TestDifferentialMatrix:
    """All strategies vs the naive reference, bdd corpus, delta engine."""

    @pytest.mark.parametrize(
        "name,text,expected",
        CASES,
        ids=[f"{name}-{text.replace(' ', '')}" for name, text, _ in CASES],
    )
    @pytest.mark.parametrize("strategy", ["chase", "rewrite", "hybrid", "auto"])
    def test_agrees_with_naive_reference(self, name, text, expected, strategy):
        entry = ENTRIES[name]
        query = parse_query(text)
        ref, _ = naive_reference(entry, query)
        assert ref == expected, "reference must be conclusive at REF_LEVELS"

        result = answer(
            entry.instance,
            entry.rules,
            query,
            strategy=strategy,
            max_levels=REF_LEVELS,
            **REWRITE_BUDGETS,
        )
        # A positive is always certain, whatever the strategy.
        if result.entailed:
            assert expected
            assert result.verdict == "exact"
        # An exact verdict is conclusive — it must equal the ground truth.
        if result.verdict == "exact":
            assert result.entailed == expected
        # No strategy may miss a witness the depth-equal reference found:
        # only a budget stop excuses a False on an entailed query.
        if ref and not result.entailed:
            assert result.verdict == "sound"
        # The goal-directed chase is depth-equal to the reference.
        if strategy == "chase":
            assert result.entailed == ref
        assert result.strategy in ("chase", "rewrite", "hybrid")
        assert result.provenance["requested"] == strategy
        assert result.telemetry["registry"]["serving"]["requests"] == 1

    def test_every_bdd_entry_is_covered(self):
        assert {name for name, _, _ in CASES} == {
            entry.name for entry in bdd_corpus()
        }


class TestEngineWorkerMatrix:
    """Strategy verdicts are engine- and worker-count-independent."""

    SUBSET = [
        ("infinite_path", "E(x1,x2), E(x2,x3), E(x3,x4)"),
        ("two_relation_linear", "Q(x,x)"),
    ]

    @pytest.mark.parametrize("name,text", SUBSET, ids=[n for n, _ in SUBSET])
    @pytest.mark.parametrize("strategy", ["chase", "hybrid"])
    @pytest.mark.parametrize(
        "engine", [e for _, e in ENGINES], ids=[label for label, _ in ENGINES]
    )
    def test_engine_invariant(self, name, text, strategy, engine):
        entry = ENTRIES[name]
        query = parse_query(text)
        baseline = answer(
            entry.instance,
            entry.rules,
            query,
            strategy=strategy,
            max_levels=REF_LEVELS,
            **REWRITE_BUDGETS,
        )
        result = answer(
            entry.instance,
            entry.rules,
            query,
            strategy=strategy,
            engine=engine,
            max_levels=REF_LEVELS,
            **REWRITE_BUDGETS,
        )
        assert result.entailed == baseline.entailed
        assert result.verdict == baseline.verdict
        assert result.evidence["kind"] == baseline.evidence["kind"]
        config = engine if isinstance(engine, EngineConfig) else None
        if config is not None:
            assert result.provenance["engine"] == config.name
            assert result.provenance["workers"] == config.workers


class TestBudgetStops:
    """Budget-stopped runs report partial ("sound") verdicts."""

    SIX_CHAIN = parse_query(
        "E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x5), E(x5,x6), E(x6,x7)"
    )

    def test_chase_budget_is_sound_not_exact(self):
        entry = ENTRIES["infinite_path"]
        tight = answer(
            entry.instance,
            entry.rules,
            self.SIX_CHAIN,
            strategy="chase",
            max_levels=2,
        )
        assert not tight.entailed
        assert tight.verdict == "sound"
        assert tight.evidence["kind"] == "chase_budget"
        ref, _ = naive_reference(entry, self.SIX_CHAIN, max_levels=2)
        assert ref == tight.entailed

        ample = answer(
            entry.instance,
            entry.rules,
            self.SIX_CHAIN,
            strategy="chase",
            max_levels=8,
        )
        assert ample.entailed
        assert ample.verdict == "exact"
        assert ample.evidence["kind"] == "chase_witness"

    def test_hybrid_rewriting_beats_the_chase_budget(self):
        # The complete rewriting folds the six-chain down to the base
        # edge, answering exactly where the chase budget gave up.
        entry = ENTRIES["infinite_path"]
        result = answer(
            entry.instance,
            entry.rules,
            self.SIX_CHAIN,
            strategy="hybrid",
            max_levels=2,
        )
        assert result.entailed
        assert result.verdict == "exact"
        assert result.evidence["kind"] == "rewriting_witness"
        assert result.strategy == "hybrid"

    def test_rewrite_budget_is_sound_then_exact(self):
        entry = ENTRIES["datalog_chain_3"]
        query = parse_query("P3(x,y)")
        tight = answer(
            entry.instance,
            entry.rules,
            query,
            strategy="rewrite",
            max_rewrite_depth=1,
        )
        assert not tight.entailed
        assert tight.verdict == "sound"
        assert tight.evidence["kind"] == "rewriting_budget"

        ample = answer(
            entry.instance, entry.rules, query, strategy="rewrite"
        )
        assert ample.entailed
        assert ample.verdict == "exact"
        assert ample.evidence["kind"] == "rewriting_witness"


class TestGoalDirectedSavings:
    """The acceptance pin: same verdict, measurably fewer atoms."""

    @staticmethod
    def workload():
        edges = ", ".join(f"E(c{i},c{i + 1})" for i in range(60))
        side = ", ".join(f"S(d{i},d{i + 1})" for i in range(10))
        instance = parse_instance(f"{edges}, {side}")
        rules = parse_rules(
            """
            E(x,y), E(y,z) -> E(x,z)
            S(x,y) -> exists z. S(y,z)
            """,
            name="tc_with_noise",
        )
        return instance, rules

    def test_same_verdict_fewer_atoms_than_saturation(self):
        instance, rules = self.workload()
        query = parse_query("E(x,y)", answers=["x", "y"])
        bindings = (Constant("c0"), Constant("c5"))

        goal = answer(
            instance, rules, query, bindings, strategy="chase", max_levels=4
        )
        assert goal.entailed
        assert goal.verdict == "exact"
        assert goal.evidence["kind"] == "chase_witness"

        saturated = oblivious_chase(instance, rules, max_levels=4)
        assert entails_cq(saturated.instance, query, bindings)
        assert goal.evidence["atoms"] < len(saturated.instance)

        serving = goal.telemetry["registry"]["serving"]
        assert serving["goal_stops"] == 1
        assert serving["delta_probes"] > 0
        # The S-successor rule cannot reach the goal predicate.
        assert serving["rules_pruned"] == 1
        assert goal.provenance["rules_used"] == 1
        assert goal.provenance["rules_total"] == 2


class TestEnumerationMode:
    """No bindings + answer variables: certain tuples, Boolean reading."""

    RULES = parse_rules(
        """
        P(x) -> exists z. R(x,z)
        R(x,y) -> S(x)
        """,
        name="enum_rules",
    )
    INSTANCE = parse_instance("P(a)")

    @pytest.mark.parametrize("strategy", ["chase", "rewrite", "auto"])
    def test_constant_tuples_agree(self, strategy):
        query = parse_query("S(x)", answers=["x"])
        result = answer(self.INSTANCE, self.RULES, query, strategy=strategy)
        assert result.tuples == {(Constant("a"),)}
        assert result.entailed
        assert result.verdict == "exact"

    @pytest.mark.parametrize("strategy", ["chase", "rewrite", "auto"])
    def test_null_only_witness_entails_but_yields_no_tuple(self, strategy):
        # The chase satisfies ∃x,y R(x,y) only via a null, so the Boolean
        # reading holds while the certain answer set stays empty — on
        # every strategy (the rewrite path rewrites the Boolean reading
        # separately; R's second position cannot absorb the existential
        # as an answer variable, but can as a free one).
        query = parse_query("R(x,y)", answers=["x", "y"])
        result = answer(self.INSTANCE, self.RULES, query, strategy=strategy)
        assert result.tuples == set()
        assert result.entailed
        assert result.verdict == "exact"


class TestUniformSurface:
    """Satellite plumbing: deprecation alias, validation, relevance."""

    def test_certain_answer_is_a_deprecated_alias(self):
        entry = ENTRIES["datalog_chain_3"]
        query = parse_query("P3(x,y)")
        with pytest.warns(DeprecationWarning, match="repro.serving.answer"):
            legacy = certain_answer(entry.instance, entry.rules, query)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert legacy == answer(
                entry.instance, entry.rules, query, strategy="chase"
            ).entailed

    def test_unknown_strategy_is_rejected(self):
        entry = ENTRIES["infinite_path"]
        with pytest.raises(ValueError, match="unknown strategy"):
            answer(
                entry.instance,
                entry.rules,
                parse_query("E(x,y)"),
                strategy="magic",
            )

    def test_binding_arity_mismatch_is_rejected(self):
        entry = ENTRIES["infinite_path"]
        query = parse_query("E(x,y)", answers=["x"])
        with pytest.raises(ValueError, match="binding"):
            answer(
                entry.instance,
                entry.rules,
                query,
                (Constant("a"), Constant("b")),
                strategy="chase",
            )

    def test_inconsistent_binding_is_exact_false(self):
        entry = ENTRIES["infinite_path"]
        query = parse_query("E(x,x)", answers=["x", "x"])
        result = answer(
            entry.instance,
            entry.rules,
            query,
            (Constant("a"), Constant("b")),
            strategy="chase",
        )
        assert not result.entailed
        assert result.verdict == "exact"
        assert result.evidence["kind"] == "inconsistent_binding"

    def test_relevance_closure_and_pruning(self):
        rules = parse_rules(
            """
            A(x) -> B(x)
            B(x) -> C(x)
            S(x,y) -> exists z. S(y,z)
            """,
            name="layers",
        )
        query = parse_query("C(x)")
        preds = goal_predicates([query])
        closure = relevant_closure(rules, preds)
        assert {p.name for p in closure} == {"A", "B", "C"}
        pruned = relevant_rules(rules, preds)
        assert len(pruned) == 2
        assert all(
            atom.predicate.name != "S"
            for rule in pruned
            for atom in rule.head
        )

    def test_empty_instance_terminates_exactly(self):
        entry = ENTRIES["tournament_builder"]
        assert isinstance(entry.instance, Instance)
        # Pruning for the unknown predicate drops every rule, so the
        # chase on the empty instance reaches its fixpoint immediately.
        result = answer(
            entry.instance, entry.rules, parse_query("Z(u)"), strategy="chase"
        )
        assert not result.entailed
        assert result.verdict == "exact"
        assert result.evidence["kind"] == "chase_fixpoint"

    def test_serving_counters_reset_between_requests(self):
        entry = ENTRIES["infinite_path"]
        answer(entry.instance, entry.rules, parse_query("E(x,y)"))
        snapshot = SERVING_STATS.snapshot()
        assert snapshot["requests"] >= 1
        SERVING_STATS.reset()
        assert SERVING_STATS.snapshot()["requests"] == 0
