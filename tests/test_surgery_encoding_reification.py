"""Unit tests for instance encoding (§4.1) and reification (§4.2)."""

import pytest

from repro.logic.atoms import TOP_ATOM, atom, edge
from repro.logic.instances import Instance
from repro.logic.predicates import Predicate
from repro.logic.signatures import Signature
from repro.queries.entailment import entails_cq
from repro.rules.parser import parse_instance, parse_query, parse_rules
from repro.surgery.instance_encoding import (
    encode_instance,
    encoded_chase_equivalent,
    top_rule,
)
from repro.surgery.reification import (
    projection_rules,
    reification_chase_equivalent,
    reify_atom,
    reify_instance,
    reify_predicate,
    reify_query,
    reify_rule,
    reify_rules,
    reify_signature,
)


class TestTopRule:
    def test_body_is_top(self):
        rule = top_rule(parse_instance("E(a,b)"))
        assert rule.body == frozenset([TOP_ATOM])

    def test_all_terms_become_existential(self):
        rule = top_rule(parse_instance("E(a,b), E(b,c)"))
        assert len(rule.existential_variables()) == 3
        assert not rule.frontier()

    def test_structure_preserved(self):
        rule = top_rule(parse_instance("E(a,b), E(b,c)"))
        # The head must be a 2-path over fresh variables.
        head_atoms = sorted(rule.head)
        assert len(head_atoms) == 2
        targets = {a.args[1] for a in head_atoms}
        sources = {a.args[0] for a in head_atoms}
        assert len(targets & sources) == 1  # the middle vertex

    def test_empty_instance_rejected(self):
        with pytest.raises(ValueError):
            top_rule(Instance())

    def test_corollary15_on_terminating_rules(self):
        rules = parse_rules("P(x,y) -> exists z. Q(y,z)")
        assert encoded_chase_equivalent(
            rules, parse_instance("P(a,b)"), max_levels=4
        )

    def test_corollary15_on_growing_rules(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        assert encoded_chase_equivalent(
            rules, parse_instance("E(a,b)"), max_levels=3
        )

    def test_encoded_ruleset_contains_original(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        encoded = encode_instance(rules, parse_instance("E(a,b)"))
        assert len(encoded) == len(rules) + 1


class TestReifyBasics:
    def test_binary_predicate_unchanged(self):
        p = Predicate("E", 2)
        assert reify_predicate(p) == [p]

    def test_ternary_predicate_splits(self):
        parts = reify_predicate(Predicate("T", 3))
        assert len(parts) == 3
        assert all(p.arity == 2 for p in parts)

    def test_reify_atom_wide(self):
        from repro.logic.terms import Variable

        name = Variable("alpha")
        wide = atom("T", "x", "y", "z")
        parts = reify_atom(wide, name)
        assert len(parts) == 3
        assert all(a.args[1] == name for a in parts)

    def test_reify_atom_narrow_identity(self):
        from repro.logic.terms import Variable

        a = edge("x", "y")
        assert reify_atom(a, Variable("alpha")) == [a]

    def test_reify_signature(self):
        sig = Signature([Predicate("E", 2), Predicate("T", 3)])
        reified = reify_signature(sig)
        assert reified.is_binary()
        assert len(reified) == 4

    def test_reify_instance_invents_one_null_per_atom(self):
        inst = parse_instance("T(a,b,c), T(b,c,d)")
        reified = reify_instance(inst)
        nulls = {t for t in reified.active_domain() if t.is_null}
        assert len(nulls) == 2


class TestReifyRules:
    def test_head_name_variable_is_existential(self):
        rule = parse_rules("E(x,y) -> exists z. T(x,y,z)").rules()[0]
        reified = reify_rule(rule)
        # z plus the atom-name variable.
        assert len(reified.existential_variables()) == 2

    def test_body_name_variable_is_universal(self):
        rule = parse_rules("T(x,y,z) -> E(x,y)").rules()[0]
        reified = reify_rule(rule)
        assert len(reified.body) == 3
        assert not reified.existential_variables()

    def test_lemma19_on_wide_rules(self):
        rules = parse_rules("T(x,y,u) -> exists z. T(y,z,u)")
        assert reification_chase_equivalent(
            rules, parse_instance("T(a,b,c)"), max_levels=3
        )

    def test_lemma19_mixed_signature(self):
        rules = parse_rules(
            """
            T(x,y,u) -> exists z. T(y,z,u)
            T(x,y,u) -> E(x,y)
            """
        )
        assert reification_chase_equivalent(
            rules, parse_instance("T(a,b,c)"), max_levels=3
        )

    def test_reified_signature_is_binary(self):
        rules = parse_rules("T(x,y,u) -> exists z. T(y,z,u)")
        assert reify_rules(rules).signature().is_binary()

    def test_projection_rules_shape(self):
        sig = Signature([Predicate("T", 3)])
        projections = projection_rules(sig)
        assert len(projections) == 1
        rule = projections.rules()[0]
        assert len(rule.head) == 3
        assert len(rule.existential_variables()) == 1


class TestReifyQuery:
    def test_wide_query_becomes_binary(self):
        q = parse_query("T(x,y,z)")
        reified = reify_query(q)
        assert all(a.predicate.arity <= 2 for a in reified.atoms)

    def test_reified_query_matches_reified_instance(self):
        q = parse_query("T(x,y,z)")
        inst = parse_instance("T(a,b,c)")
        assert entails_cq(reify_instance(inst), reify_query(q))
