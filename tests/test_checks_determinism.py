"""Fixture tests for the determinism pass (D101/D102/D103).

Each fixture is a minimal snippet of the shape the pass exists to catch
(or to leave alone): unordered iteration feeding an ordered consumer,
hash-order bucketing, wall-clock reads — and the canonical-order idioms
that must stay clean (sorted() wrapping, collect-then-sort, allow
markers with justifications).
"""

import textwrap

from repro.checks.base import SourceModule
from repro.checks.determinism import DeterminismPass

PASS = DeterminismPass()


def run(source, rel="src/repro/logic/example.py"):
    module = SourceModule.from_source(textwrap.dedent(source), rel)
    live, allowed = [], []
    for finding in PASS.run(module):
        (allowed if module.allowed(finding) else live).append(finding)
    return live, allowed


def rules(findings):
    return sorted(f.rule for f in findings)


def test_set_iteration_feeding_append_is_flagged():
    live, _ = run(
        """
        def leak(items):
            out = []
            bucket = set(items)
            for atom in bucket:
                out.append(atom)
            return out
        """
    )
    assert rules(live) == ["D101"]
    assert "ordered consumer" in live[0].message


def test_unordered_argument_to_sink_is_flagged():
    live, _ = run(
        """
        def record(recorder, batch):
            produced = frozenset(batch)
            recorder.record_round(produced)
        """
    )
    assert rules(live) == ["D101"]
    assert "ordered sink" in live[0].message


def test_hash_modulo_bucketing_is_flagged():
    live, _ = run(
        """
        def route(atom, count):
            return hash(atom) % count
        """
    )
    assert rules(live) == ["D102"]


def test_wall_clock_and_unseeded_random_are_flagged():
    live, _ = run(
        """
        import random
        import time

        def stamp():
            return (time.time(), random.random())
        """
    )
    assert rules(live) == ["D103", "D103"]


def test_sorted_wrapping_neutralizes_the_taint():
    live, _ = run(
        """
        def canonical(items):
            out = []
            for atom in sorted(set(items)):
                out.append(atom)
            return out
        """
    )
    assert live == []


def test_collect_then_sort_is_not_flagged():
    live, _ = run(
        """
        def collect(items):
            out = []
            for atom in set(items):
                out.append(atom)
            out.sort()
            return out
        """
    )
    assert live == []


def test_allow_marker_suppresses_routing_hash():
    live, allowed = run(
        """
        def shard_of(atom, count):
            # checks: allow[D102] -- routing only; outputs re-merge by the
            # canonical trigger index, so results are routing-independent.
            return hash(atom) % count
        """
    )
    assert live == []
    assert rules(allowed) == ["D102"]


def test_seeded_random_and_perf_counter_are_clean():
    live, _ = run(
        """
        import random
        import time

        def generate(seed):
            rng = random.Random(seed)
            started = time.perf_counter()
            return rng, started
        """
    )
    assert live == []
