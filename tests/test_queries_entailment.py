"""Unit tests for entailment, injective entailment and certain answers."""

from repro.logic.terms import Constant
from repro.queries.entailment import (
    answers,
    certain_answer,
    entails_cq,
    entails_ucq,
)
from repro.queries.ucq import UCQ
from repro.rules.parser import parse_instance, parse_query, parse_rules

C = Constant


class TestEntailsCQ:
    def test_boolean_match(self):
        inst = parse_instance("E(a,b), E(b,c)")
        assert entails_cq(inst, parse_query("E(x,y), E(y,z)"))

    def test_boolean_no_match(self):
        inst = parse_instance("E(a,b), E(c,d)")
        assert not entails_cq(inst, parse_query("E(x,y), E(y,z)"))

    def test_bindings_pin_answers(self):
        inst = parse_instance("E(a,b)")
        q = parse_query("E(x,y)", answers=("x", "y"))
        assert entails_cq(inst, q, (C("a"), C("b")))
        assert not entails_cq(inst, q, (C("b"), C("a")))

    def test_loop_query(self):
        assert entails_cq(parse_instance("E(a,a)"), parse_query("E(x,x)"))
        assert not entails_cq(
            parse_instance("E(a,b)"), parse_query("E(x,x)")
        )

    def test_injective_entailment(self):
        loop = parse_instance("E(a,a)")
        two_step = parse_query("E(x,y), E(y,z)")
        assert entails_cq(loop, two_step)
        assert not entails_cq(loop, two_step, injective=True)

    def test_incompatible_bindings_fail_gracefully(self):
        inst = parse_instance("E(a,b)")
        q = parse_query("E(x,x)", answers=("x", "x"))
        assert not entails_cq(inst, q, (C("a"), C("b")))


class TestEntailsUCQ:
    def test_any_disjunct_suffices(self):
        inst = parse_instance("E(a,b)")
        q_match = parse_query("E(x,y)")
        q_miss = parse_query("P(x)")
        assert entails_ucq(inst, UCQ([q_miss, q_match], answers=()))

    def test_no_disjunct_matches(self):
        inst = parse_instance("Q(a)")
        assert not entails_ucq(
            inst, UCQ([parse_query("P(x)")], answers=())
        )


class TestAnswers:
    def test_enumerates_tuples(self):
        inst = parse_instance("E(a,b), E(b,c)")
        q = parse_query("E(x,y)", answers=("x",))
        assert answers(inst, q) == {(C("a"),), (C("b"),)}


class TestCertainAnswer:
    def test_chase_derived_fact(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = parse_instance("E(a,b)")
        # b has an outgoing edge only after the chase.
        q = parse_query("E(x,y), E(y,z)")
        assert certain_answer(inst, rules, q, max_levels=2)

    def test_non_entailed_fact(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = parse_instance("E(a,b)")
        assert not certain_answer(
            inst, rules, parse_query("E(x,x)"), max_levels=3
        )

    def test_example1_loop_not_entailed(self):
        # Example 1: the chase never produces a loop.
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y), E(y,z) -> E(x,z)
            """
        )
        assert not certain_answer(
            parse_instance("E(a,b)"),
            rules,
            parse_query("E(x,x)"),
            max_levels=4,
        )

    def test_bdd_variant_loop_entailed(self):
        # The bdd-ified Example 1 entails the loop (Property p in action).
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        assert certain_answer(
            parse_instance("E(a,b)"),
            rules,
            parse_query("E(x,x)"),
            max_levels=3,
        )
