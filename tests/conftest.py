"""Shared fixtures: corpus entries and small pre-computed chases."""

from __future__ import annotations

import warnings

import pytest

# multiprocessing.resource_tracker warns about "leaked" shared_memory
# segments it saw registered but not unregistered at interpreter exit.
# The engine's SegmentPool owns and unlinks every segment it creates
# (tests assert /dev/shm is clean via repro.engine.shm.active_segments),
# and creates are explicitly deregistered from the tracker — this filter
# only mutes the tracker's exit-time heuristic on interpreters that
# re-register behind our back (it cannot hide a real leak from the
# registry-based assertions).
warnings.filterwarnings(
    "ignore",
    message=r"resource_tracker: There appear to be .* leaked shared_memory",
)

from repro.chase import oblivious_chase
from repro.corpus import (
    example_1,
    example_1_bdd,
    infinite_path,
    tournament_builder,
)
from repro.logic import Instance
from repro.rules import parse_instance, parse_rules


@pytest.fixture(autouse=True)
def _reset_stats_registry():
    """Zero the metrics registry before each test.

    The matcher/instantiation/transport stats are process-wide
    accumulators, so without this a test asserting on counters would see
    whatever earlier tests (or session-scoped fixtures) happened to
    spend — the cross-run leakage the registry's ``reset_all`` exists to
    prevent.
    """
    from repro.obs import reset_all

    reset_all()


@pytest.fixture(scope="session")
def ex1():
    return example_1()


@pytest.fixture(scope="session")
def ex1_bdd():
    return example_1_bdd()


@pytest.fixture(scope="session")
def builder():
    return tournament_builder()


@pytest.fixture(scope="session")
def path_entry():
    return infinite_path()


@pytest.fixture(scope="session")
def path_chase(path_entry):
    """Chase of the single linear successor rule from E(a, b), 4 levels."""
    return oblivious_chase(
        path_entry.instance, path_entry.rules, max_levels=4
    )


@pytest.fixture(scope="session")
def builder_chase(builder):
    """Chase of the top-seeded tournament builder, 4 levels."""
    return oblivious_chase(Instance(), builder.rules, max_levels=4)


@pytest.fixture(scope="session")
def builder_regal(builder):
    """The regal pipeline output for the tournament builder (Def 27)."""
    from repro.surgery import regal_pipeline

    return regal_pipeline(builder.rules, rewriting_depth=8, strict=False).regal


@pytest.fixture()
def edge_ab():
    return parse_instance("E(a,b)")


@pytest.fixture()
def successor_rules():
    return parse_rules("E(x,y) -> exists z. E(y,z)", name="succ")
