"""Tests for the guarded and backward-existential corpus entries."""

from repro.chase.oblivious import oblivious_chase
from repro.core.theorem import check_property_p
from repro.core.timestamps import existential_chase
from repro.core.treewidth import guarded_chase_treewidth_report
from repro.corpus.examples import backward_growth, guarded_triangle
from repro.rules.classes import (
    is_forward_existential,
    is_guarded,
    is_linear,
)
from repro.surgery.streamline import streamline, streamline_chase_equivalent


class TestGuardedTriangle:
    def test_classification(self):
        entry = guarded_triangle()
        assert is_guarded(entry.rules)
        assert not is_linear(entry.rules)

    def test_treewidth_stays_bounded(self):
        entry = guarded_triangle()
        report = guarded_chase_treewidth_report(
            entry.rules, entry.instance, max_levels=4
        )
        assert report.guarded
        assert report.within_guarded_bound

    def test_property_p_consistent(self):
        entry = guarded_triangle()
        report = check_property_p(entry.rules, entry.instance, max_levels=4)
        assert report.consistent_with_property_p
        assert not report.loop_entailed


class TestBackwardGrowth:
    def test_not_forward_existential(self):
        entry = backward_growth()
        assert not is_forward_existential(entry.rules)

    def test_chase_grows_predecessors(self):
        entry = backward_growth()
        result = oblivious_chase(entry.instance, entry.rules, max_levels=3)
        # Every level adds a new predecessor of the previous source.
        assert len(result.chase_terms()) == 3

    def test_existential_chase_violates_timestamp_monotonicity(self):
        """Backward heads point from new to old: Observation 35's edge
        direction fails — which is exactly why the paper needs the
        forward-existential normal form."""
        from repro.core.timestamps import timestamps_increase_along_edges

        entry = backward_growth()
        result = oblivious_chase(entry.instance, entry.rules, max_levels=3)
        assert not timestamps_increase_along_edges(result)

    def test_streamlining_makes_it_forward_existential(self):
        entry = backward_growth()
        streamlined = streamline(entry.rules)
        assert is_forward_existential(streamlined)

    def test_streamlining_preserves_chase(self):
        entry = backward_growth()
        assert streamline_chase_equivalent(
            entry.rules, entry.instance, max_levels=2
        )

    def test_streamlined_existential_chase_is_dag(self):
        """After streamlining, Observation 35 holds even though the
        original E-atoms point backward: the E-heads now come from the
        Datalog stage, and the existential stage is forward."""
        from repro.core.timestamps import (
            existential_chase_is_dag,
        )

        entry = backward_growth()
        streamlined = streamline(entry.rules)
        result = existential_chase(streamlined, max_levels=4)
        assert existential_chase_is_dag(result)
