"""Integration: the paper's Example 1 narrative, end to end (Section 1).

The full story: the transitive rule set is not bdd and its chase grows
loop-free tournaments; every *finite* model, however, contains a loop; the
bdd-ified variant entails the loop already in the chase, as Property (p)
demands.
"""

import networkx as nx

from repro.chase.oblivious import oblivious_chase
from repro.core.egraph import egraph, has_loop
from repro.core.tournament import entails_loop, max_tournament_size
from repro.corpus.examples import example_1, example_1_bdd
from repro.corpus.generators import random_digraph_instance
from repro.queries.entailment import entails_cq
from repro.rewriting.rewriter import rewrite
from repro.rules.parser import parse_query


class TestUnrestrictedSemantics:
    def test_chase_never_entails_loop(self):
        entry = example_1()
        result = oblivious_chase(entry.instance, entry.rules, max_levels=5)
        assert not entails_loop(result.instance)

    def test_chase_entails_arbitrarily_long_paths(self):
        entry = example_1()
        result = oblivious_chase(entry.instance, entry.rules, max_levels=5)
        # A path query of length 5 matches (the chase is a universal model).
        assert entails_cq(
            result.instance,
            parse_query("E(a1,a2), E(a2,a3), E(a3,a4), E(a4,a5)"),
        )

    def test_tournaments_grow_with_depth(self):
        entry = example_1()
        result = oblivious_chase(entry.instance, entry.rules, max_levels=5)
        sizes = [
            max_tournament_size(egraph(result.prefix(level)))
            for level in range(6)
        ]
        assert sizes[-1] > sizes[0]


class TestFiniteSemantics:
    def _close_under_rules(self, graph: nx.DiGraph, budget: int = 10_000):
        """Finite-model completion: add successors (reusing vertices) and
        close transitively — a finite structure satisfying Example 1."""
        nodes = list(graph.nodes)
        # Every node needs an out-edge: wire sinks back to the first node.
        for node in nodes:
            if graph.out_degree(node) == 0:
                graph.add_edge(node, nodes[0])
        # Transitive closure.
        closure = nx.transitive_closure(graph, reflexive=False)
        return closure

    def test_every_finite_model_has_loop(self):
        """Example 1's moral: in the finite, the loop is unavoidable."""
        for seed in range(10):
            start = random_digraph_instance(5, 0.3, seed=seed)
            graph = egraph(start)
            if graph.number_of_nodes() == 0:
                graph.add_edge("a", "b")
            model = self._close_under_rules(graph)
            assert any(
                model.has_edge(v, v) for v in model.nodes
            ), f"loop-free finite model at seed {seed}?!"

    def test_finite_and_unrestricted_semantics_diverge(self):
        """⟨I,R⟩ ⊭ Loop_E in the unrestricted semantics although every
        finite model satisfies it — R is not finitely controllable *for
        this entailment* unless it is excluded from bdd (it is: not bdd)."""
        entry = example_1()
        result = oblivious_chase(entry.instance, entry.rules, max_levels=5)
        assert not entails_loop(result.instance)  # unrestricted: no
        # finite: yes (previous test); no contradiction with (bdd ⇒ fc)
        # because the rule set is not bdd:
        rewriting = rewrite(
            parse_query("E(x,y)", answers=("x", "y")),
            entry.rules,
            max_depth=4,
        )
        assert not rewriting.complete


class TestBddVariant:
    def test_loop_appears_at_level_two(self):
        entry = example_1_bdd()
        result = oblivious_chase(entry.instance, entry.rules, max_levels=3)
        assert not entails_loop(result.prefix(1))
        assert entails_loop(result.prefix(2))

    def test_loop_rewriting_is_edge_existence(self):
        """Section 1: the new rule triggers ∃x E(x,x) as soon as
        ∃x∃y E(x,y) is entailed."""
        entry = example_1_bdd()
        result = rewrite(parse_query("E(x,x)"), entry.rules, max_depth=8)
        assert result.complete
        from repro.queries.entailment import entails_ucq
        from repro.rules.parser import parse_instance

        assert entails_ucq(parse_instance("E(u,v)"), result.ucq)
        assert not entails_ucq(parse_instance("P(u)"), result.ucq)

    def test_infinite_tournament_would_need_distinct_terms(self):
        """Section 1: a model with Tournaments_E but no Loop_E is infinite
        — on finite prefixes, tournament vertices are pairwise distinct."""
        entry = example_1()
        result = oblivious_chase(entry.instance, entry.rules, max_levels=5)
        graph = egraph(result.instance)
        from repro.core.tournament import max_tournament

        vertices = max_tournament(graph)
        assert len(vertices) == len(set(vertices))
        assert not has_loop(graph)
