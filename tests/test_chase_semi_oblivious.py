"""Unit tests for the semi-oblivious chase."""

from repro.chase.oblivious import oblivious_chase
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.logic.homomorphisms import homomorphically_equivalent
from repro.rules.parser import parse_instance, parse_rules


class TestSemiObliviousChase:
    def test_same_frontier_fires_once(self):
        # Two triggers with the same frontier image (y -> b): only one
        # successor is invented for b.
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = parse_instance("E(a,b), E(c,b)")
        semi = semi_oblivious_chase(inst, rules, max_levels=1)
        oblivious = oblivious_chase(inst, rules, max_levels=1)
        assert len(semi.instance) == len(inst) + 1
        assert len(oblivious.instance) == len(inst) + 2

    def test_distinct_frontiers_both_fire(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = parse_instance("E(a,b), E(a,c)")
        semi = semi_oblivious_chase(inst, rules, max_levels=1)
        assert len(semi.instance) == len(inst) + 2

    def test_hom_equivalent_to_oblivious(self):
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y), E(y,z) -> F(x,z)
            """
        )
        inst = parse_instance("E(a,b), E(c,b)")
        semi = semi_oblivious_chase(inst, rules, max_levels=3)
        oblivious = oblivious_chase(inst, rules, max_levels=3)
        assert homomorphically_equivalent(
            semi.instance, oblivious.instance
        )

    def test_termination_detection(self):
        rules = parse_rules("P(x,y) -> exists z. Q(y,z)")
        result = semi_oblivious_chase(
            parse_instance("P(a,b), P(c,b)"), rules, max_levels=4
        )
        assert result.terminated

    def test_never_larger_than_oblivious(self):
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        inst = parse_instance("E(a,b)")
        semi = semi_oblivious_chase(
            inst, rules, max_levels=3, max_atoms=20_000
        )
        oblivious = oblivious_chase(
            inst, rules, max_levels=3, max_atoms=20_000
        )
        assert len(semi.instance) <= len(oblivious.instance)

    def test_datalog_identical_to_oblivious(self):
        # Datalog rules have full-frontier heads: the two chases coincide.
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        inst = parse_instance("E(a,b), E(b,c), E(c,d)")
        semi = semi_oblivious_chase(inst, rules, max_levels=5)
        oblivious = oblivious_chase(inst, rules, max_levels=5)
        assert semi.instance == oblivious.instance
