"""Integration: the Section 4 reduction chain, end to end.

Each surgery preserves (i) the chase up to hom-equivalence on the original
signature and (ii) the properties the next stage needs — so a
counterexample to Property (p) would survive into the regal world.  We
verify both on the corpus.
"""

import pytest

from repro.chase.oblivious import chase_from_top, oblivious_chase
from repro.corpus.examples import bdd_corpus, example_1_bdd, wide_signature
from repro.logic.instances import Instance
from repro.queries.entailment import entails_cq
from repro.rules.parser import parse_query
from repro.surgery.instance_encoding import encoded_chase_equivalent
from repro.surgery.regal import regal_pipeline, regality_report
from repro.surgery.reification import reification_chase_equivalent
from repro.surgery.streamline import streamline_chase_equivalent


# Corpus entries small enough for the full pipeline.
PIPELINE_ENTRIES = [
    entry
    for entry in bdd_corpus()
    if entry.name
    in {"infinite_path", "two_relation_linear", "bowtie_merge"}
]


class TestStagePreservation:
    @pytest.mark.parametrize(
        "entry", PIPELINE_ENTRIES, ids=lambda e: e.name
    )
    def test_corollary15_encoding(self, entry):
        assert encoded_chase_equivalent(
            entry.rules, entry.instance, max_levels=3
        )

    def test_lemma19_reification(self):
        entry = wide_signature()
        assert reification_chase_equivalent(
            entry.rules, entry.instance, max_levels=3
        )

    @pytest.mark.parametrize(
        "entry", PIPELINE_ENTRIES, ids=lambda e: e.name
    )
    def test_lemma24_streamlining(self, entry):
        assert streamline_chase_equivalent(
            entry.rules, entry.instance, max_levels=2
        )


class TestEndToEnd:
    @pytest.mark.parametrize(
        "entry", PIPELINE_ENTRIES, ids=lambda e: e.name
    )
    def test_full_pipeline_regality(self, entry):
        pipeline = regal_pipeline(
            entry.rules, entry.instance, rewriting_depth=10, strict=False
        )
        report = regality_report(
            pipeline.regal, witness_instances=[Instance()], max_levels=3
        )
        assert report.binary_signature
        assert report.forward_existential
        assert report.predicate_unique
        assert report.quick_on_witnesses

    def test_pipeline_preserves_loop_freeness(self):
        """The regal chase from {⊤} entails Loop_E iff the original does:
        here the loop-free infinite path stays loop-free."""
        from repro.corpus.examples import infinite_path
        from repro.core.tournament import entails_loop

        entry = infinite_path()
        pipeline = regal_pipeline(
            entry.rules, entry.instance, rewriting_depth=10, strict=False
        )
        regal_chase = chase_from_top(
            pipeline.regal, max_levels=5, max_atoms=20_000
        )
        assert not entails_loop(regal_chase.instance)

    def test_pipeline_preserves_loop_entailment(self):
        """...and the loop-entailing bdd Example 1 keeps its loop."""
        from repro.core.tournament import entails_loop

        entry = example_1_bdd()
        pipeline = regal_pipeline(
            entry.rules, entry.instance, rewriting_depth=10, strict=False
        )
        regal_chase = chase_from_top(
            pipeline.regal, max_levels=7, max_atoms=50_000
        )
        assert entails_loop(regal_chase.instance)

    def test_pipeline_preserves_e_signature_semantics(self):
        """Query-level check: the regal chase of the encoded instance
        answers the same E-queries as the original chase."""
        from repro.corpus.examples import infinite_path

        entry = infinite_path()
        pipeline = regal_pipeline(
            entry.rules, entry.instance, rewriting_depth=10, strict=False
        )
        original = oblivious_chase(
            entry.instance, entry.rules, max_levels=3
        )
        regal_chase = chase_from_top(
            pipeline.regal, max_levels=12, max_atoms=20_000
        )
        for text in ["E(x,y)", "E(x,y), E(y,z)", "E(x,x)"]:
            query = parse_query(text)
            original_answer = entails_cq(original.instance, query)
            regal_answer = entails_cq(regal_chase.instance, query)
            assert original_answer == regal_answer, text
