"""Fixture tests for the hot-path discipline pass (H401-H403).

Only functions opted in with ``# checks: hot`` are analyzed; inside
their loops, comprehensions, constructor calls and repeated deep
attribute chains are flagged.
"""

import textwrap

from repro.checks.base import SourceModule
from repro.checks.hotpath import HotPathPass

PASS = HotPathPass()


def run(source, rel="src/repro/logic/example.py"):
    module = SourceModule.from_source(textwrap.dedent(source), rel)
    live, allowed = [], []
    for finding in PASS.run(module):
        (allowed if module.allowed(finding) else live).append(finding)
    return live, allowed


def rules(findings):
    return sorted(f.rule for f in findings)


def test_comprehension_in_hot_loop_is_flagged():
    live, _ = run(
        """
        # checks: hot
        def drain(batch):
            out = []
            for atom in batch:
                out.extend([term for term in atom])
            return out
        """
    )
    assert rules(live) == ["H401"]


def test_constructor_and_copy_in_hot_loop_are_flagged():
    live, _ = run(
        """
        # checks: hot
        def widen(batch, base):
            out = []
            for atom in batch:
                extra = set(atom)
                local = base.copy()
                out.append((extra, local))
            return out
        """
    )
    assert rules(live) == ["H402", "H402"]


def test_repeated_attribute_chain_in_hot_loop_is_flagged():
    live, _ = run(
        """
        # checks: hot
        def tally(batch, table):
            total = 0
            for atom in batch:
                total += table.index.counts[atom]
                total -= table.index.counts.get(atom, 0)
            return total
        """
    )
    assert rules(live) == ["H403"]
    assert "table.index.counts" in live[0].message


def test_unmarked_function_is_not_analyzed():
    live, _ = run(
        """
        def drain(batch):
            out = []
            for atom in batch:
                out.extend([term for term in atom])
                extra = set(atom)
                out.append(extra)
            return out
        """
    )
    assert live == []


def test_hoisted_and_rebound_chains_are_clean():
    live, _ = run(
        """
        # checks: hot
        def pack(batch, out):
            append = out.append
            for atom in batch:
                append(atom)
            return out
        """
    )
    assert live == []


def test_allow_marker_suppresses_output_allocation():
    live, allowed = run(
        """
        # checks: hot
        def spans(rows):
            for row in rows:
                # checks: allow[H402] -- the tuple IS the yielded output.
                yield tuple(row)
        """
    )
    assert live == []
    assert rules(allowed) == ["H402"]


def test_nested_loops_report_each_site_once():
    live, _ = run(
        """
        # checks: hot
        def search(stack, batch):
            while stack:
                for atom in batch:
                    stack.append({term for term in atom})
        """
    )
    assert rules(live) == ["H401"]
