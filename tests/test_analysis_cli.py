"""Unit tests for the analysis battery, corpus families and the CLI."""

import json

import pytest

from repro.analysis.report import analyze, analyze_entry
from repro.cli import main
from repro.corpus.examples import example_1_bdd, infinite_path
from repro.corpus.families import (
    branching_tree,
    datalog_grid,
    family_sweep,
    inclusion_chain,
    merge_ladder,
)


class TestFamilies:
    def test_inclusion_chain_scaling(self):
        for length in (1, 2, 4):
            entry = inclusion_chain(length)
            assert len(entry.rules) == length

    def test_branching_tree_head_size(self):
        entry = branching_tree(3)
        rule = entry.rules.rules()[0]
        assert len(rule.head) == 3
        assert len(rule.existential_variables()) == 3

    def test_merge_ladder_entails_loop(self):
        from repro.core.theorem import check_property_p

        entry = merge_ladder(1)
        report = check_property_p(
            entry.rules, max_levels=4, max_atoms=30_000
        )
        assert report.loop_entailed

    def test_datalog_grid_oracle(self):
        from repro.chase.oblivious import oblivious_chase

        entry = datalog_grid(5)
        result = oblivious_chase(entry.instance, entry.rules, max_levels=8)
        assert result.terminated
        assert len(result.instance) == 5 * 6 // 2 + 1

    def test_family_sweep(self):
        entries = family_sweep(inclusion_chain, [1, 2, 3])
        assert [len(e.rules) for e in entries] == [1, 2, 3]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            inclusion_chain(0)
        with pytest.raises(ValueError):
            branching_tree(0)
        with pytest.raises(ValueError):
            merge_ladder(0)


class TestAnalysis:
    def test_analyze_shape(self):
        entry = infinite_path()
        report = analyze(entry.rules, entry.instance, max_levels=3)
        assert report["linear"] is True
        assert report["loop_query_rewritable"] is True
        assert report["loop_level"] is None
        assert report["property_p_consistent"] is True
        assert report["chromatic_number"] == 2

    def test_analyze_loop_entailing(self):
        entry = example_1_bdd()
        report = analyze(entry.rules, entry.instance, max_levels=3)
        assert report["loop_level"] == 2
        assert report["chromatic_number"] is None  # loop: uncolorable

    def test_analyze_entry_ground_truth(self):
        for entry in (infinite_path(), example_1_bdd()):
            report = analyze_entry(entry, max_levels=3)
            assert report["ground_truth_consistent"], entry.name


@pytest.fixture()
def rule_file(tmp_path):
    path = tmp_path / "rules.txt"
    path.write_text(
        "E(x,y) -> exists z. E(y,z)\n"
        "E(x,xp), E(y,yp) -> E(x,yp)\n"
    )
    return str(path)


class TestCLI:
    def test_chase_command(self, rule_file, capsys):
        code = main(
            ["chase", rule_file, "--instance", "E(a,b)", "--levels", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "terminated=False" in out

    def test_chase_list_engines(self, capsys):
        from repro.engine import available_engines

        code = main(["chase", "--list-engines"])
        assert code == 0
        out = capsys.readouterr().out
        # The listing is generated from the registry, so every registered
        # engine appears by name.
        for name in available_engines():
            assert name in out
        assert "mode=" in out

    def test_chase_without_rules_errors(self):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["chase"])
        assert "rule file is required" in str(excinfo.value.code)

    def test_chase_help_lists_registry_engines(self, capsys):
        import pytest

        from repro.engine import available_engines

        with pytest.raises(SystemExit) as excinfo:
            main(["chase", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in available_engines():
            assert name in out

    def test_rewrite_command(self, rule_file, capsys):
        code = main(["rewrite", rule_file, "E(x,x)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "complete=True" in out

    def test_classify_command(self, rule_file, capsys):
        code = main(["classify", rule_file])
        assert code == 0
        assert "sticky" in capsys.readouterr().out

    def test_property_p_command(self, rule_file, capsys):
        code = main(
            ["property-p", rule_file, "--instance", "E(a,b)",
             "--levels", "3"]
        )
        assert code == 0
        assert "loop level       : 2" in capsys.readouterr().out

    def test_analyze_json(self, rule_file, capsys):
        code = main(
            ["analyze", rule_file, "--instance", "E(a,b)", "--json",
             "--levels", "3"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["loop_level"] == 2

    def test_rewrite_incomplete_exit_code(self, tmp_path, capsys):
        path = tmp_path / "trans.txt"
        path.write_text("E(x,y), E(y,z) -> E(x,z)\n")
        code = main(
            ["rewrite", str(path), "E(x,y)", "--answers", "x,y",
             "--depth", "3"]
        )
        assert code == 1
