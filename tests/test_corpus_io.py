"""Unit tests for the corpus, generators, text rendering and serialization."""

from repro.corpus.examples import bdd_corpus, full_corpus
from repro.corpus.generators import (
    cycle_instance,
    path_instance,
    random_digraph_instance,
    random_instance,
    random_nonrecursive_ruleset,
    tournament_instance,
)
from repro.io.serialization import (
    cq_from_dict,
    cq_to_dict,
    instance_from_dict,
    instance_to_dict,
    rule_from_dict,
    rule_to_dict,
    ruleset_from_dict,
    ruleset_to_dict,
    ucq_from_dict,
    ucq_to_dict,
)
from repro.io.text import format_instance, format_ruleset, format_table
from repro.logic.predicates import EDGE, Predicate
from repro.queries.ucq import UCQ
from repro.rules.acyclicity import is_non_recursive
from repro.rules.parser import parse_instance, parse_query, parse_rules


class TestCorpus:
    def test_all_entries_have_distinct_names(self):
        names = [entry.name for entry in full_corpus()]
        assert len(names) == len(set(names))

    def test_bdd_subset(self):
        assert all(entry.is_bdd for entry in bdd_corpus())
        assert len(bdd_corpus()) < len(full_corpus())

    def test_entries_chase_safely(self):
        from repro.chase.oblivious import oblivious_chase

        for entry in full_corpus():
            result = oblivious_chase(
                entry.instance, entry.rules, max_levels=2, max_atoms=5_000
            )
            assert len(result.instance) >= 1


class TestGenerators:
    def test_path_shape(self):
        inst = path_instance(4)
        assert len(inst.with_predicate(EDGE)) == 4

    def test_cycle_shape(self):
        inst = cycle_instance(4)
        assert len(inst.with_predicate(EDGE)) == 4

    def test_tournament_covers_all_pairs(self):
        inst = tournament_instance(5, seed=0)
        assert len(inst.with_predicate(EDGE)) == 10

    def test_tournament_deterministic_by_seed(self):
        assert tournament_instance(5, seed=3) == tournament_instance(5, seed=3)
        assert tournament_instance(5, seed=3) != tournament_instance(5, seed=4)

    def test_random_digraph_probability_extremes(self):
        empty = random_digraph_instance(4, 0.0, seed=0)
        full = random_digraph_instance(4, 1.0, seed=0)
        assert len(empty.with_predicate(EDGE)) == 0
        assert len(full.with_predicate(EDGE)) == 12  # no loops

    def test_random_instance_respects_signature(self):
        sig = [Predicate("P", 1), Predicate("Q", 2)]
        inst = random_instance(sig, n_terms=3, n_atoms=10, seed=1)
        assert inst.signature() <= set(sig) | {Predicate("top", 0)}

    def test_nonrecursive_generator_is_bdd_certified(self):
        for seed in range(3):
            rules = random_nonrecursive_ruleset(seed=seed)
            assert is_non_recursive(rules)

    def test_nonrecursive_generator_deterministic(self):
        assert random_nonrecursive_ruleset(seed=5) == random_nonrecursive_ruleset(seed=5)


class TestTextRendering:
    def test_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]

    def test_instance_truncation(self):
        inst = path_instance(100)
        rendered = format_instance(inst, limit=5)
        assert "more atoms" in rendered

    def test_ruleset_rendering_numbered(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)", name="r")
        rendered = format_ruleset(rules)
        assert rendered.startswith("# r")
        assert "[0]" in rendered


class TestSerialization:
    def test_instance_roundtrip(self):
        inst = parse_instance("E(a,b), P(c)")
        assert instance_from_dict(instance_to_dict(inst)) == inst

    def test_rule_roundtrip(self):
        rule = parse_rules("E(x,y) -> exists z. E(y,z)").rules()[0]
        assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_ruleset_roundtrip(self):
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y), E(y,z) -> E(x,z)
            """,
            name="pair",
        )
        restored = ruleset_from_dict(ruleset_to_dict(rules))
        assert restored == rules and restored.name == "pair"

    def test_cq_roundtrip(self):
        q = parse_query("E(x,y), E(y,z)", answers=("x", "z"))
        assert cq_from_dict(cq_to_dict(q)) == q

    def test_ucq_roundtrip(self):
        query = UCQ(
            [parse_query("E(x,y)"), parse_query("E(x,y), E(y,z)")],
            answers=(),
        )
        assert ucq_from_dict(ucq_to_dict(query)) == query

    def test_json_compatible(self):
        import json

        inst = parse_instance("E(a,b)")
        assert json.loads(json.dumps(instance_to_dict(inst))) == instance_to_dict(inst)
