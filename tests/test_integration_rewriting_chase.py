"""Integration: Definition 2/3 — the rewriting engine agrees with the
chase engine on a corpus of instances (the library's strongest internal
consistency check)."""

import pytest

from repro.corpus.generators import (
    path_instance,
    random_digraph_instance,
    tournament_instance,
)
from repro.rewriting.bdd import (
    cross_validate_rewriting,
    ucq_rewritability_certificate,
)
from repro.rules.parser import parse_instance, parse_query, parse_rules

QUERIES = [
    parse_query("E(x,x)"),
    parse_query("E(x,y), E(y,z)"),
    parse_query("E(x,y), E(y,x)"),
]

RULESETS = [
    parse_rules("E(x,y) -> exists z. E(y,z)", name="succ"),
    parse_rules(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,xp), E(y,yp) -> E(x,yp)
        """,
        name="ex1_bdd",
    ),
    parse_rules(
        """
        P(x,y) -> E(x,y)
        E(x,y) -> exists z. E(y,z)
        """,
        name="projected_succ",
    ),
]

INSTANCES = [
    parse_instance(""),
    parse_instance("E(a,b)"),
    parse_instance("E(a,a)"),
    parse_instance("P(a,b)"),
    parse_instance("E(a,b), E(b,a)"),
    path_instance(3),
    tournament_instance(3, seed=0),
    random_digraph_instance(4, 0.4, seed=1),
    random_digraph_instance(4, 0.2, seed=2),
]


@pytest.mark.parametrize("rules", RULESETS, ids=lambda r: r.name)
@pytest.mark.parametrize("query", QUERIES, ids=lambda q: str(q))
def test_rewriting_matches_chase(rules, query):
    certificate = ucq_rewritability_certificate(
        query, rules, max_depth=10, max_disjuncts=500
    )
    assert certificate is not None, f"{rules.name} not rewritable for {query}"
    # Level 4 suffices: every certificate above has fixpoint depth ≤ 3,
    # and deeper levels explode quadratically under the merge rule.
    mismatches = cross_validate_rewriting(
        query, certificate.rewriting, rules, INSTANCES, max_levels=4
    )
    assert mismatches == [], (
        f"{len(mismatches)} mismatch(es) for {query} under {rules.name}: "
        + "; ".join(
            f"rewriting={rw} chase={ch}" for _, rw, ch in mismatches
        )
    )


def test_proposition4_bdd_iff_rewritable_on_witnesses():
    """Proposition 4's two sides measured together: the rewriting fixpoint
    depth upper-bounds the observed chase stabilization depth."""
    from repro.rewriting.bdd import empirical_bdd_constant

    rules = RULESETS[1]
    query = QUERIES[0]
    certificate = ucq_rewritability_certificate(query, rules, max_depth=10)
    empirical = empirical_bdd_constant(
        query, rules, INSTANCES[:5], max_levels=4
    )
    assert empirical <= certificate.fixpoint_depth + 1
