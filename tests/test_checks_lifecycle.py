"""Fixture tests for the resource-lifecycle pass (L301-L303).

Acquires (SharedMemory/SegmentPool/WorkerPool/Pipe) must reach a release
on all paths including exception edges; ownership transfer (with blocks,
returns, call arguments, attribute stores into a class with a teardown
method) is respected.
"""

import textwrap

from repro.checks.base import SourceModule
from repro.checks.lifecycle import LifecyclePass

PASS = LifecyclePass()


def run(source, rel="src/repro/engine/example.py"):
    module = SourceModule.from_source(textwrap.dedent(source), rel)
    live, allowed = [], []
    for finding in PASS.run(module):
        (allowed if module.allowed(finding) else live).append(finding)
    return live, allowed


def rules(findings):
    return sorted(f.rule for f in findings)


def test_discarded_acquire_is_flagged():
    live, _ = run(
        """
        from multiprocessing import shared_memory

        def probe():
            shared_memory.SharedMemory(create=True, size=16)
        """
    )
    assert rules(live) == ["L301"]
    assert "discarded" in live[0].message


def test_never_released_local_is_flagged():
    live, _ = run(
        """
        from multiprocessing import shared_memory

        def acquire():
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.buf[0] = 1
        """
    )
    assert rules(live) == ["L301"]
    assert "never released" in live[0].message


def test_release_outside_finally_is_flagged():
    live, _ = run(
        """
        from multiprocessing import shared_memory

        def acquire():
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.buf[0] = 1
            segment.close()
            segment.unlink()
        """
    )
    assert rules(live) == ["L302"]


def test_attribute_store_without_teardown_is_flagged():
    live, _ = run(
        """
        class Pool:
            def __init__(self, workers):
                self._pool = WorkerPool(workers)
        """
    )
    assert rules(live) == ["L303"]
    assert "teardown" in live[0].message


def test_try_finally_release_is_clean():
    live, _ = run(
        """
        from multiprocessing import shared_memory

        def acquire():
            segment = shared_memory.SharedMemory(create=True, size=16)
            try:
                segment.buf[0] = 1
            finally:
                segment.close()
                segment.unlink()
        """
    )
    assert live == []


def test_with_block_and_ownership_transfer_are_clean():
    live, _ = run(
        """
        from multiprocessing import shared_memory

        def ctx():
            with shared_memory.SharedMemory(create=True, size=16) as segment:
                segment.buf[0] = 1

        def make_pool(workers):
            pool = WorkerPool(workers)
            return pool

        def register(registry, workers):
            registry.adopt(WorkerPool(workers))
        """
    )
    assert live == []


def test_class_with_teardown_method_is_clean():
    live, _ = run(
        """
        class GoodPool:
            def __init__(self, workers):
                self._pool = WorkerPool(workers)

            def close(self):
                self._pool.shutdown()
        """
    )
    assert live == []


def test_allow_marker_suppresses_justified_leak():
    live, allowed = run(
        """
        from multiprocessing import shared_memory

        def bench_segment():
            # checks: allow[lifecycle] -- benchmark child process exits
            # immediately after; the OS reclaims the mapping.
            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.buf[0] = 1
        """
    )
    assert live == []
    assert rules(allowed) == ["L301"]
