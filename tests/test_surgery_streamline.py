"""Unit tests for the streamlining surgery ▽ (§4.3)."""

import pytest

from repro.rules.classes import (
    is_forward_existential,
    is_predicate_unique,
)
from repro.rules.parser import parse_instance, parse_rules
from repro.surgery.streamline import (
    streamline,
    streamline_chase_equivalent,
    streamline_rule,
    streamline_triples,
)


class TestStreamlineRule:
    def _triple(self):
        rule = parse_rules("E(x,y) -> exists z. E(y,z)").rules()[0]
        return streamline_rule(rule, tag="t")

    def test_triple_shapes(self):
        triple = self._triple()
        assert not triple.init.is_datalog
        assert not triple.existential.is_datalog
        assert triple.datalog.is_datalog

    def test_init_head_is_stage_one(self):
        triple = self._triple()
        names = {a.predicate.name for a in triple.init.head}
        assert names == {"A_t_0", "A_t_y"}

    def test_existential_body_matches_init_head(self):
        triple = self._triple()
        assert triple.existential.body == triple.init.head

    def test_datalog_body_matches_existential_head(self):
        triple = self._triple()
        assert triple.datalog.body == triple.existential.head

    def test_datalog_head_is_original_head(self):
        triple = self._triple()
        assert triple.datalog.head == triple.source.head

    def test_datalog_rule_rejected(self):
        rule = parse_rules("E(x,y), E(y,z) -> E(x,z)").rules()[0]
        with pytest.raises(ValueError):
            streamline_rule(rule, tag="t")

    def test_w_variable_fresh(self):
        rule = parse_rules("E(w,y) -> exists z. E(y,z)").rules()[0]
        triple = streamline_rule(rule, tag="t")
        # The fresh anchor must avoid the rule's own 'w'.
        init_vars = {v.name for v in triple.init.existential_variables()}
        assert init_vars == {"w_0"}


class TestStreamlineRuleset:
    def test_lemma25_structural_properties(self):
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,xp), E(y,yp) -> E(x,yp)
            """
        )
        streamlined = streamline(rules)
        assert is_forward_existential(streamlined)
        assert is_predicate_unique(streamlined)

    def test_datalog_rules_kept_verbatim(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        assert streamline(rules) == rules

    def test_rule_count(self):
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y), E(y,z) -> E(x,z)
            """
        )
        # 1 existential rule -> 3, plus 1 Datalog kept.
        assert len(streamline(rules)) == 4

    def test_triples_only_for_existential_rules(self):
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y), E(y,z) -> E(x,z)
            """
        )
        assert len(streamline_triples(rules)) == 1

    def test_lemma24_chase_preserved_linear(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        assert streamline_chase_equivalent(
            rules, parse_instance("E(a,b)"), max_levels=2
        )

    def test_lemma24_chase_preserved_terminating(self):
        rules = parse_rules("P(x,y) -> exists z. Q(y,z)")
        assert streamline_chase_equivalent(
            rules, parse_instance("P(a,b)"), max_levels=3
        )

    def test_lemma24_with_datalog_interplay(self):
        rules = parse_rules(
            """
            E(x,y) -> exists z. E(y,z)
            E(x,y), E(y,z) -> F(x,z)
            """
        )
        assert streamline_chase_equivalent(
            rules, parse_instance("E(a,b)"), max_levels=2
        )

    def test_multi_frontier_rule(self):
        rules = parse_rules("E(x,y), E(y,u) -> exists z. F(y,z), G(u,z)")
        streamlined = streamline(rules)
        assert is_forward_existential(streamlined)
        assert is_predicate_unique(streamlined)
        assert streamline_chase_equivalent(
            rules, parse_instance("E(a,b), E(b,c)"), max_levels=2
        )
