"""Unit tests for the restricted chase and chase bounds helpers."""

from repro.chase.bounds import growth_curve, suggested_level_budget
from repro.chase.oblivious import oblivious_chase
from repro.chase.restricted import restricted_chase
from repro.rules.parser import parse_instance, parse_rules


class TestRestrictedChase:
    def test_satisfied_trigger_not_fired(self):
        # E(a,b) with existing successor: restricted chase adds nothing.
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = parse_instance("E(a,b), E(b,a)")
        result = restricted_chase(inst, rules, max_rounds=5)
        assert result.terminated
        assert len(result.instance) == len(inst)

    def test_unsatisfied_trigger_fires(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        inst = parse_instance("E(a,b)")
        result = restricted_chase(inst, rules, max_rounds=2)
        assert len(result.instance) > len(inst)

    def test_restricted_smaller_than_oblivious(self):
        # Terminating case: P(a,b) with Q present vs absent.
        rules = parse_rules("P(x,y) -> exists z. Q(y,z)")
        inst = parse_instance("P(a,b), Q(b,c)")
        restricted = restricted_chase(inst, rules, max_rounds=5)
        oblivious = oblivious_chase(inst, rules, max_levels=5)
        assert len(restricted.instance) <= len(oblivious.instance)
        assert restricted.terminated

    def test_datalog_restricted_equals_oblivious_closure(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        inst = parse_instance("E(a,b), E(b,c), E(c,d)")
        restricted = restricted_chase(inst, rules, max_rounds=10)
        oblivious = oblivious_chase(inst, rules, max_levels=10)
        assert restricted.instance == oblivious.instance


class TestBounds:
    def test_non_recursive_budget_is_strata_count(self):
        rules = parse_rules(
            """
            P(x,y) -> exists z. Q(y,z)
            Q(x,y) -> exists z. R(y,z)
            """
        )
        assert suggested_level_budget(rules) == 4  # 3 strata + 1

    def test_datalog_budget_scales_with_rules(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        assert suggested_level_budget(rules) >= 3

    def test_default_for_unclassified(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        assert suggested_level_budget(rules, default=7) == 7

    def test_growth_curve_monotone(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        curve = growth_curve(parse_instance("E(a,b)"), rules, max_levels=4)
        atoms = [point.atoms for point in curve]
        assert atoms == sorted(atoms)
        assert curve[0].level == 0
