"""Unit tests for chromatic number, girth, clique number (Conjecture 44)."""

import math

import pytest

from repro.core.coloring import (
    chromatic_number,
    clique_number,
    girth,
    greedy_chromatic_upper_bound,
)
from repro.core.egraph import egraph
from repro.corpus.generators import (
    cycle_instance,
    path_instance,
    tournament_instance,
)
from repro.rules.parser import parse_instance


class TestChromaticNumber:
    def test_path_is_two_colorable(self):
        assert chromatic_number(egraph(path_instance(5))) == 2

    def test_odd_cycle_needs_three(self):
        assert chromatic_number(egraph(cycle_instance(5))) == 3

    def test_even_cycle_needs_two(self):
        assert chromatic_number(egraph(cycle_instance(6))) == 2

    def test_complete_tournament_needs_n(self):
        assert chromatic_number(egraph(tournament_instance(4, seed=0))) == 4

    def test_edgeless_graph_one_color(self):
        assert chromatic_number(egraph(parse_instance("P(a)"))) == 0

    def test_loop_uncolorable(self):
        with pytest.raises(ValueError):
            chromatic_number(egraph(parse_instance("E(a,a)")))

    def test_greedy_upper_bound_dominates_exact(self):
        graph = egraph(cycle_instance(5))
        assert greedy_chromatic_upper_bound(graph) >= chromatic_number(graph)


class TestGirth:
    def test_forest_has_infinite_girth(self):
        assert math.isinf(girth(egraph(path_instance(4))))

    def test_cycle_girth_is_length(self):
        assert girth(egraph(cycle_instance(5))) == 5

    def test_loop_girth_one(self):
        assert girth(egraph(parse_instance("E(a,a)"))) == 1

    def test_digon_girth_two(self):
        assert girth(egraph(parse_instance("E(a,b), E(b,a)"))) == 2


class TestCliqueNumber:
    def test_tournament_clique(self):
        assert clique_number(egraph(tournament_instance(5, seed=1))) == 5

    def test_path_clique(self):
        assert clique_number(egraph(path_instance(4))) == 2

    def test_erdos_gap_exists(self):
        # Theorem 45's moral: chromatic number can exceed clique number
        # (e.g. the 5-cycle: clique 2, chromatic 3).
        graph = egraph(cycle_instance(5))
        assert clique_number(graph) == 2
        assert chromatic_number(graph) == 3
