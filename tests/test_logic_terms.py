"""Unit tests for terms, fresh supplies and coercion."""

import pytest

from repro.logic.terms import (
    Constant,
    FreshSupply,
    Null,
    Variable,
    as_term,
    fresh_renaming,
    variables_of,
)


class TestTermIdentity:
    def test_equal_same_kind_same_name(self):
        assert Variable("x") == Variable("x")
        assert Constant("a") == Constant("a")
        assert Null("n") == Null("n")

    def test_distinct_kinds_never_equal(self):
        assert Variable("x") != Constant("x")
        assert Variable("x") != Null("x")
        assert Constant("x") != Null("x")

    def test_hash_consistent_with_equality(self):
        assert hash(Variable("x")) == hash(Variable("x"))
        assert len({Variable("x"), Variable("x"), Constant("x")}) == 2

    def test_kind_predicates(self):
        assert Constant("a").is_constant
        assert Variable("x").is_variable
        assert Null("n").is_null
        assert not Constant("a").is_variable


class TestTermOrdering:
    def test_constants_before_variables_before_nulls(self):
        assert Constant("z") < Variable("a")
        assert Variable("z") < Null("a")

    def test_same_kind_ordered_by_name(self):
        assert Variable("a") < Variable("b")
        assert not Variable("b") < Variable("a")

    def test_sorting_is_deterministic(self):
        terms = [Null("n"), Constant("c"), Variable("v")]
        assert sorted(terms) == [Constant("c"), Variable("v"), Null("n")]


class TestFreshSupply:
    def test_supplies_distinct_names(self):
        supply = FreshSupply()
        names = {supply.null().name for _ in range(100)}
        assert len(names) == 100

    def test_prefix_respected(self):
        supply = FreshSupply(prefix="_q")
        assert supply.variable().name.startswith("_q")

    def test_bulk_helpers(self):
        supply = FreshSupply()
        assert len(supply.nulls(5)) == 5
        assert len(set(supply.variables(5))) == 5

    def test_different_supplies_same_prefix_collide(self):
        # Documented behaviour: reuse a supply within one run.
        a, b = FreshSupply("_s"), FreshSupply("_s")
        assert a.null() == b.null()


class TestAsTerm:
    def test_lowercase_becomes_variable(self):
        assert as_term("x") == Variable("x")

    def test_uppercase_becomes_constant(self):
        assert as_term("Alice") == Constant("Alice")

    def test_digit_start_becomes_constant(self):
        assert as_term("42") == Constant("42")

    def test_quoted_becomes_constant(self):
        assert as_term("'bob'") == Constant("bob")

    def test_terms_pass_through(self):
        v = Variable("x")
        assert as_term(v) is v

    def test_rejects_non_strings(self):
        with pytest.raises(TypeError):
            as_term(7)

    def test_rejects_empty(self):
        with pytest.raises(TypeError):
            as_term("")


class TestHelpers:
    def test_variables_of_filters(self):
        terms = [Constant("a"), Variable("x"), Null("n"), Variable("y")]
        assert list(variables_of(terms)) == [Variable("x"), Variable("y")]

    def test_fresh_renaming_skips_constants(self):
        supply = FreshSupply("_f")
        renaming = fresh_renaming(
            [Constant("a"), Variable("x"), Variable("x")], supply
        )
        assert Constant("a") not in renaming
        assert Variable("x") in renaming

    def test_fresh_renaming_is_injective(self):
        supply = FreshSupply("_f")
        renaming = fresh_renaming(
            [Variable("x"), Variable("y"), Null("n")], supply
        )
        assert len(set(renaming.values())) == 3
