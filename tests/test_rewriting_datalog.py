"""Unit tests for the semi-naive Datalog evaluator."""

import pytest

from repro.chase.oblivious import oblivious_chase
from repro.errors import ChaseBudgetExceeded, NotARuleClassError
from repro.corpus.generators import path_instance
from repro.rewriting.datalog import semi_naive_closure
from repro.rules.parser import parse_instance, parse_rules


class TestSemiNaive:
    def test_transitive_closure_exact(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        closure = semi_naive_closure(path_instance(6), rules)
        # n(n+1)/2 edges plus top.
        assert len(closure) == 6 * 7 // 2 + 1

    def test_matches_oblivious_chase(self):
        rules = parse_rules(
            """
            E(x,y), E(y,z) -> E(x,z)
            E(x,y) -> F(y,x)
            F(x,y), F(y,z) -> G(x,z)
            """
        )
        inst = parse_instance("E(a,b), E(b,c), E(c,a)")
        closure = semi_naive_closure(inst, rules)
        chased = oblivious_chase(inst, rules, max_levels=10)
        assert closure == chased.instance

    def test_rejects_existential_rules(self):
        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        with pytest.raises(NotARuleClassError):
            semi_naive_closure(parse_instance("E(a,b)"), rules)

    def test_empty_delta_terminates_immediately(self):
        rules = parse_rules("P(x), Q(x) -> R(x)")
        inst = parse_instance("P(a)")
        closure = semi_naive_closure(inst, rules)
        assert closure == inst

    def test_constants_in_rules(self):
        from repro.logic.atoms import atom
        from repro.logic.terms import Constant

        rules = parse_rules("E(x, Hub) -> Spoke(x)")
        inst = parse_instance("E(a, Hub), E(b, other)")
        closure = semi_naive_closure(inst, rules)
        assert atom("Spoke", Constant("a")) in closure
        assert atom("Spoke", Constant("b")) not in closure

    def test_atom_budget_enforced(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        with pytest.raises(ChaseBudgetExceeded):
            semi_naive_closure(path_instance(30), rules, max_atoms=50)

    def test_self_join_rule(self):
        rules = parse_rules("E(x,y), E(x,z) -> Sib(y,z)")
        inst = parse_instance("E(a,b), E(a,c)")
        closure = semi_naive_closure(inst, rules)
        names = {
            (atom.args[0].name, atom.args[1].name)
            for atom in closure
            if atom.predicate.name == "Sib"
        }
        assert names == {
            ("b", "b"), ("b", "c"), ("c", "b"), ("c", "c")
        }


class TestFreezing:
    def test_freeze_produces_matching_instance(self):
        from repro.queries.entailment import entails_cq
        from repro.queries.freezing import freeze
        from repro.rules.parser import parse_query

        q = parse_query("E(x,y), E(y,z)")
        frozen, _ = freeze(q)
        assert entails_cq(frozen, q)

    def test_distinct_variables_distinct_terms(self):
        from repro.queries.freezing import freeze
        from repro.rules.parser import parse_query

        q = parse_query("E(x,y), E(y,z)")
        _, mapping = freeze(q)
        assert len(set(mapping.values())) == 3

    def test_rigid_freezing_uses_constants(self):
        from repro.queries.freezing import freeze
        from repro.rules.parser import parse_query

        frozen, mapping = freeze(parse_query("E(x,y)"), rigid=True)
        assert all(t.is_constant for t in mapping.values())

    def test_canonical_database_agrees_with_subsumes(self):
        from repro.queries.freezing import entails_via_canonical_database
        from repro.queries.minimization import subsumes
        from repro.rules.parser import parse_query

        pairs = [
            (parse_query("E(x,y)"), parse_query("E(x,y), E(y,z)")),
            (parse_query("E(x,y), E(y,z)"), parse_query("E(x,y)")),
            (
                parse_query("E(x,y)", answers=("x",)),
                parse_query("E(u,v), E(v,w)", answers=("u",)),
            ),
        ]
        for general, specific in pairs:
            assert entails_via_canonical_database(
                general, specific
            ) == subsumes(general, specific)
