"""Unit tests for valley queries (Def 39) and Lemma 42 / Prop 43 machinery."""

import pytest

from repro.core.theorem import (
    classify_valley,
    decompose_valley,
    defined_relation,
    function_image,
    is_functional,
    lemma42_applies,
    loop_from_valley_tournament,
)
from repro.core.valley import (
    is_valley_query,
    maximal_existential_variables,
)
from repro.logic.terms import Constant, Variable
from repro.rules.parser import parse_instance, parse_query

V, C = Variable, Constant


class TestIsValleyQuery:
    def test_v_shape_is_valley(self):
        # u -> x and u -> y: both answers maximal, u in the valley.
        q = parse_query("E(u,x), E(u,y)", answers=("x", "y"))
        assert is_valley_query(q)

    def test_single_maximal_answer_is_valley(self):
        # x -> y: only y maximal, still a valley (Prop 43 case 2).
        q = parse_query("E(x,y)", answers=("x", "y"))
        assert is_valley_query(q)

    def test_existential_peak_disqualifies(self):
        # x -> z with z existential and maximal: not a valley.
        q = parse_query("E(x,z), E(w,y)", answers=("x", "y"))
        assert not is_valley_query(q)

    def test_cycle_disqualifies(self):
        q = parse_query("E(x,y), E(y,x)", answers=("x", "y"))
        assert not is_valley_query(q)

    def test_wrong_arity_disqualifies(self):
        q = parse_query("E(x,y)", answers=("x",))
        assert not is_valley_query(q)

    def test_wide_atoms_disqualify(self):
        q = parse_query("T(x,y,z)", answers=("x", "y"))
        assert not is_valley_query(q)

    def test_maximal_existential_listing(self):
        q = parse_query("E(x,z), E(w,y)", answers=("x", "y"))
        assert maximal_existential_variables(q) == [V("z")]


class TestLemma42:
    def test_precondition_checker(self):
        # All variables below the single answer x.
        q = parse_query("E(u,v), E(v,x)", answers=("x",))
        assert lemma42_applies(q)
        q_bad = parse_query("E(x,u)", answers=("x",))
        assert not lemma42_applies(q_bad)

    def test_path_query_functional_on_dag(self):
        # In a forward-existential chase shape, each target has a unique
        # source via a fixed path query.
        inst = parse_instance("E(a,b), E(b,c), E(b,d)")
        q = parse_query("E(u,x)", answers=("x", "u"))
        assert is_functional(q, inst)

    def test_branching_breaks_functionality(self):
        inst = parse_instance("E(a,c), E(b,c), E(c,d)")
        # Looking *down* from x to its successors u: c has one successor,
        # but looking up from c there are two predecessors.
        q = parse_query("E(u,x)", answers=("x", "u"))
        assert not is_functional(q, inst)

    def test_defined_relation(self):
        inst = parse_instance("E(a,b), E(b,c)")
        q = parse_query("E(x,y)", answers=("x", "y"))
        assert defined_relation(q, inst) == {
            (C("a"), C("b")),
            (C("b"), C("c")),
        }

    def test_function_image(self):
        inst = parse_instance("E(a,b)")
        q = parse_query("E(u,x)", answers=("x",))
        image = function_image(
            q.atoms, V("x"), C("b"), [V("u")], inst
        )
        assert image == (C("a"),)

    def test_function_image_absent(self):
        inst = parse_instance("E(a,b)")
        q = parse_query("E(u,x)", answers=("x",))
        assert function_image(q.atoms, V("x"), C("a"), [V("u")], inst) is None


class TestClassifyValley:
    def test_two_maximal(self):
        q = parse_query("E(u,x), E(u,y)", answers=("x", "y"))
        assert classify_valley(q) == "two_maximal"

    def test_single_maximal(self):
        q = parse_query("E(x,y)", answers=("x", "y"))
        assert classify_valley(q) == "single_maximal"

    def test_disconnected(self):
        q = parse_query("E(u,x), E(w,y)", answers=("x", "y"))
        assert classify_valley(q) == "disconnected"

    def test_non_valley_rejected(self):
        q = parse_query("E(x,z), E(w,y)", answers=("x", "y"))
        with pytest.raises(ValueError):
            classify_valley(q)


class TestDecomposition:
    def test_v_shape_decomposition(self):
        q = parse_query("E(u,x), E(u,y)", answers=("x", "y"))
        decomposition = decompose_valley(q)
        assert V("u") in decomposition.shared_variables
        x_names = {a.args[1].name for a in decomposition.x_side}
        assert x_names == {"x"}

    def test_deeper_valley(self):
        q = parse_query(
            "E(v,u), E(u,x), E(v,w), E(w,y)", answers=("x", "y")
        )
        decomposition = decompose_valley(q)
        assert V("v") in decomposition.shared_variables
        assert len(decomposition.x_side) == 2
        assert len(decomposition.y_side) == 2


class TestProposition43:
    def test_disconnected_case_derives_loop(self):
        # q = E(u,x) ∧ E(w,y): defines a tournament on {b, c, d} in the
        # instance below; any vertex with an incoming edge satisfies both
        # halves, so a loop is derived.
        q = parse_query("E(u,x), E(w,y)", answers=("x", "y"))
        inst = parse_instance("E(a,b), E(a,c), E(a,d), E(b,c)")
        vertices = [C("b"), C("c"), C("d")]
        u = loop_from_valley_tournament(q, inst, vertices)
        assert u is not None

    def test_two_maximal_case_derives_loop(self):
        # The V-shaped query over a "star" instance: every pair of leaves
        # of the same hub is related in both directions, giving a
        # tournament of size 4 and forcing q(u, u).
        q = parse_query("E(u,x), E(u,y)", answers=("x", "y"))
        inst = parse_instance(
            "E(h,k1), E(h,k2), E(h,k3), E(h,k4)"
        )
        vertices = [C("k1"), C("k2"), C("k3"), C("k4")]
        u = loop_from_valley_tournament(q, inst, vertices)
        assert u is not None
        # The derived loop: q(u, u) holds, i.e. some leaf pairs with itself.
        from repro.queries.entailment import entails_cq

        assert entails_cq(inst, q, (u, u))

    def test_single_maximal_cannot_build_tournament(self):
        # Lemma 42: out-degree ≤ 1, so no 4-tournament; the function
        # reports None (nothing to derive).
        q = parse_query("E(x,y)", answers=("x", "y"))
        inst = parse_instance("E(a,b), E(b,c)")
        assert (
            loop_from_valley_tournament(
                q, inst, [C("a"), C("b"), C("c")]
            )
            is None
        )
