"""The columnar id-native instance: one encoding from store to wire.

Three angles:

* store semantics — id-native add/dedup/membership, vocabulary sharing
  with encoder and decoder tables, wire-log slicing
  (``packed_delta_since`` byte-equal to a fresh ``encode_atoms`` of the
  same rows, ``ingest_packed`` copying spans verbatim);
* matcher-API parity — ``count`` / ``position_count`` /
  ``sorted_with_predicate`` / ``matching_position`` / iteration agree
  *exactly* (including order) with an object-level
  :class:`~repro.logic.instances.Instance` holding the same atoms, which
  is what makes columnar worker replicas bit-identical;
* integration — columnar tracked :class:`ShardedIndex` shards and the
  ``delta_since`` append-only fast path the pool's sync hot loop rides.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import wire
from repro.engine.columnar import ColumnarInstance, Vocabulary
from repro.engine.core import delta_homomorphisms
from repro.engine.shards import ShardedIndex
from repro.engine.wire import WireDecoder, WireEncoder
from repro.errors import ChaseError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.predicates import Predicate
from repro.logic.terms import Constant, Null
from repro.rules.parser import parse_rules

E = Predicate("E", 2)
F = Predicate("F", 2)
TAG = Predicate("Tag", 1)
MARK = Predicate("Mark", 0)


def _constants(n):
    return [Constant(f"c{i}") for i in range(n)]


def _random_atoms(rng, n):
    terms = _constants(6) + [Null(f"_n{i}") for i in range(3)]
    atoms = []
    for _ in range(n):
        pred = rng.choice([E, F, TAG, MARK])
        atoms.append(
            Atom(pred, tuple(rng.choice(terms) for _ in range(pred.arity)))
        )
    return atoms


def _parent_store(atoms):
    """An encoder-vocabulary store with ``atoms`` interned through it."""
    encoder = WireEncoder()
    store = ColumnarInstance(Vocabulary.of_encoder(encoder))
    for atom in atoms:
        store.add_atom(atom, encoder)
    return encoder, store


class TestStoreSemantics:
    def test_add_dedup_len_contains(self):
        a, b = _constants(2)
        encoder, store = _parent_store([Atom(E, (a, b)), Atom(MARK, ())])
        assert not store.add_atom(Atom(E, (a, b)), encoder)
        assert len(store) == 2
        assert Atom(E, (a, b)) in store
        assert Atom(MARK, ()) in store
        assert Atom(E, (b, a)) not in store
        # Unknown symbols can never be in the store: no interning happens
        # on the read path.
        assert Atom(E, (a, Constant("unseen"))) not in store
        assert Atom(F, (a, b)) not in store

    def test_vocabulary_is_shared_by_reference(self):
        a, b, c = _constants(3)
        encoder, store = _parent_store([Atom(E, (a, b))])
        # Interning a new symbol after store creation is visible to the
        # store without any sync step.
        store.add_atom(Atom(F, (b, c)), encoder)
        assert Atom(F, (b, c)) in store
        assert store.count(F) == 1

    def test_packed_delta_is_byte_equal_to_encoder_output(self):
        # The store interns symbols in first-occurrence order, exactly as
        # a fresh encoder packing the deduplicated stream would — so the
        # sliced wire log is byte-identical to a from-scratch encode.
        rng = random.Random(7)
        atoms = _random_atoms(rng, 40)
        _, store = _parent_store(atoms)
        distinct = list(dict.fromkeys(atoms))
        assert store.packed_delta_since(0) == WireEncoder().encode_atoms(
            distinct
        )

    def test_packed_delta_mid_revision_is_a_suffix_slice(self):
        a, b, c = _constants(3)
        encoder, store = _parent_store([Atom(E, (a, b)), Atom(E, (b, c))])
        mark = store.revision
        whole_before = store.packed_delta_since(0)
        store.add_atom(Atom(F, (c, a)), encoder)
        whole = store.packed_delta_since(0)
        suffix = store.packed_delta_since(mark)
        assert whole == whole_before + suffix
        assert store.packed_delta_since(store.revision) == b""

    def test_packed_delta_revision_out_of_range(self):
        _, store = _parent_store([Atom(MARK, ())])
        with pytest.raises(ChaseError):
            store.packed_delta_since(store.revision + 1)
        with pytest.raises(ChaseError):
            store.packed_delta_since(-1)

    def test_ingest_packed_round_trip_and_dedup(self):
        rng = random.Random(11)
        atoms = _random_atoms(rng, 30)
        encoder, store = _parent_store(atoms)
        buf = store.packed_delta_since(0)
        decoder = WireDecoder()
        decoder.apply_segment(encoder.segment(0, 0))
        replica = ColumnarInstance(Vocabulary.of_decoder(decoder))
        assert replica.ingest_packed(buf) == len(store)
        # Re-ingesting the same buffer adds nothing.
        assert replica.ingest_packed(buf) == 0
        assert sorted(replica) == sorted(store)
        # The replica re-serves the exact bytes it ingested: one
        # encoding per row, ever.
        assert replica.packed_delta_since(0) == buf

    def test_ingest_packed_truncated_stream_raises(self):
        a, b = _constants(2)
        encoder, store = _parent_store([Atom(E, (a, b))])
        buf = store.packed_delta_since(0)
        decoder = WireDecoder()
        decoder.apply_segment(encoder.segment(0, 0))
        replica = ColumnarInstance(Vocabulary.of_decoder(decoder))
        with pytest.raises(ChaseError):
            replica.ingest_packed(buf[:-1])

    def test_delta_atoms_and_rows_since(self):
        a, b, c = _constants(3)
        encoder, store = _parent_store([Atom(E, (a, b))])
        mark = store.revision
        store.add_atom(Atom(E, (b, c)), encoder)
        store.add_atom(Atom(TAG, (a,)), encoder)
        assert store.delta_atoms_since(mark) == [
            Atom(E, (b, c)),
            Atom(TAG, (a,)),
        ]
        assert store.delta_atoms_since(0) == [
            Atom(E, (a, b)),
            Atom(E, (b, c)),
            Atom(TAG, (a,)),
        ]
        assert store.delta_atoms_since(store.revision) == []
        rows = list(store.delta_rows_since(mark))
        assert len(rows) == 2
        assert all(isinstance(p, int) for p, _ in rows)


class TestMatcherParity:
    """The matcher-facing API slice agrees with Instance, order included."""

    def _pair(self, seed=3, n=60):
        atoms = _random_atoms(random.Random(seed), n)
        _, store = _parent_store(atoms)
        return store, Instance(atoms, add_top=False)

    def test_counts_and_membership(self):
        store, reference = self._pair()
        for pred in (E, F, TAG, MARK):
            assert store.count(pred) == reference.count(pred)
        for atom in reference:
            assert atom in store
        assert len(store) == len(reference)
        assert store.count(Predicate("Absent", 1)) == 0

    def test_sorted_with_predicate_matches(self):
        store, reference = self._pair()
        for pred in (E, F, TAG, MARK):
            assert store.sorted_with_predicate(
                pred
            ) == reference.sorted_with_predicate(pred)
        assert store.sorted_with_predicate(Predicate("Absent", 1)) == ()

    def test_positional_index_matches(self):
        store, reference = self._pair()
        terms = _constants(6) + [Null(f"_n{i}") for i in range(3)]
        for pred in (E, F, TAG):
            for position in range(pred.arity):
                for term in terms:
                    assert store.position_count(
                        pred, position, term
                    ) == reference.position_count(pred, position, term)
                    assert store.matching_position(
                        pred, position, term
                    ) == reference.matching_position(pred, position, term)

    def test_sorted_atoms_signature_iteration(self):
        store, reference = self._pair()
        assert store.sorted_atoms() == reference.sorted_atoms()
        assert set(store.signature()) == set(reference.signature())
        assert sorted(store) == sorted(reference)

    def test_caches_invalidate_on_append(self):
        a, b, c = _constants(3)
        encoder, store = _parent_store([Atom(E, (b, c))])
        first = store.sorted_with_predicate(E)
        assert first == (Atom(E, (b, c)),)
        store.add_atom(Atom(E, (a, b)), encoder)
        assert store.sorted_with_predicate(E) == (
            Atom(E, (a, b)),
            Atom(E, (b, c)),
        )
        assert store.matching_position(E, 1, b) == (Atom(E, (a, b)),)

    def test_delta_homomorphisms_agree_with_object_instances(self):
        """The shared delta core runs unchanged on columnar stores."""
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        rule = list(rules)[0]
        atoms = [
            Atom(E, (Constant(f"c{i}"), Constant(f"c{i + 1}")))
            for i in range(5)
        ]
        pivots = atoms[2:4]
        _, store = _parent_store(atoms)
        _, view = _parent_store(pivots)
        reference = list(
            delta_homomorphisms(
                rule, Instance(atoms, add_top=False),
                Instance(pivots, add_top=False),
            )
        )
        columnar = list(delta_homomorphisms(rule, store, view))
        assert columnar == reference
        assert reference  # the workload actually matched something


class TestColumnarShardedIndex:
    def test_columnar_shards_require_tracking(self):
        with pytest.raises(ChaseError):
            ShardedIndex(2, track_shards=False, encoder=WireEncoder())

    def test_packed_deltas_served_by_slicing(self):
        encoder = WireEncoder()
        index = ShardedIndex(3, encoder=encoder)
        rng = random.Random(5)
        first = _random_atoms(rng, 25)
        index.ingest(first)
        marks = index.revision_marks()
        second = [a for a in _random_atoms(rng, 25) if a not in set(first)]
        index.ingest(second)
        packed = index.packed_deltas_since(marks)
        deltas = index.deltas_since(marks)
        # Each shard's packed buffer decodes to exactly its delta atoms.
        decoder = WireDecoder()
        decoder.apply_segment(encoder.segment(0, 0))
        for buf, delta in zip(packed, deltas):
            assert decoder.decode_atoms(buf) == list(delta)
        # The union of the deltas is the second batch, deduplicated.
        merged = [a for delta in deltas for a in delta]
        assert sorted(merged) == sorted(set(second))

    def test_columnar_and_object_shards_agree(self):
        rng = random.Random(9)
        atoms = _random_atoms(rng, 40)
        encoder = WireEncoder()
        columnar = ShardedIndex(4, encoder=encoder)
        plain = ShardedIndex(4)
        columnar.ingest(atoms)
        plain.ingest(atoms)
        assert columnar.sizes() == plain.sizes()
        assert columnar.weights() == plain.weights()
        for i in range(4):
            assert sorted(columnar.shard(i)) == sorted(plain.shard(i))

    def test_tracked_dedup_across_batches(self):
        a, b = _constants(2)
        index = ShardedIndex(2, encoder=WireEncoder())
        views = index.ingest([Atom(E, (a, b))])
        assert sum(len(v) for v in views) == 1
        views = index.ingest([Atom(E, (a, b)), Atom(F, (a, b))])
        assert sum(len(v) for v in views) == 1
        assert len(index) == 2

    def test_object_shards_still_need_encoder_to_pack(self):
        index = ShardedIndex(2)
        index.ingest([Atom(MARK, ())])
        with pytest.raises(ChaseError):
            index.packed_deltas_since(index.revision_marks())


class TestDeltaSinceFastPath:
    """`Instance.delta_since` skips the seen-set filter until a discard."""

    def test_append_only_delta_is_a_log_slice(self):
        a, b, c = _constants(3)
        inst = Instance(add_top=False)
        inst.add(Atom(E, (a, b)))
        mark = inst.revision
        inst.add(Atom(E, (b, c)))
        inst.add(Atom(TAG, (a,)))
        delta = inst.delta_since(mark)
        assert delta == [Atom(E, (b, c)), Atom(TAG, (a,))]
        # Full-history delta on an append-only instance is the log itself.
        assert inst.delta_since(0) == [
            Atom(E, (a, b)),
            Atom(E, (b, c)),
            Atom(TAG, (a,)),
        ]

    def test_discard_switches_to_filtering(self):
        a, b, c = _constants(3)
        inst = Instance(add_top=False)
        inst.add(Atom(E, (a, b)))
        inst.add(Atom(E, (b, c)))
        inst.discard(Atom(E, (a, b)))
        # The discarded atom must not reappear in any delta.
        assert inst.delta_since(0) == [Atom(E, (b, c))]
        # Re-adding after a discard logs a second occurrence; the delta
        # stays a set, keeping the first surviving log position.
        inst.add(Atom(E, (a, b)))
        assert inst.delta_since(0) == [Atom(E, (a, b)), Atom(E, (b, c))]

    def test_failed_discard_keeps_fast_path_semantics(self):
        a, b = _constants(2)
        inst = Instance(add_top=False)
        inst.add(Atom(E, (a, b)))
        revision = inst.revision
        assert not inst.discard(Atom(F, (a, b)))
        # A no-op discard bumps nothing and the delta stays exact.
        assert inst.revision == revision
        assert inst.delta_since(0) == [Atom(E, (a, b))]

    def test_copy_preserves_filtering_state(self):
        a, b = _constants(2)
        inst = Instance(add_top=False)
        inst.add(Atom(E, (a, b)))
        inst.discard(Atom(E, (a, b)))
        inst.add(Atom(E, (a, b)))
        clone = inst.copy()
        # The clone rebuilds from live atoms only — its log is clean, so
        # either path must produce the same delta.
        assert clone.delta_since(0) == inst.delta_since(0)
