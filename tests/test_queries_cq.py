"""Unit tests for CQs and UCQs: views, graph structure, value semantics."""

import pytest

from repro.logic.atoms import edge
from repro.logic.substitutions import Substitution
from repro.logic.terms import FreshSupply, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UCQ
from repro.rules.parser import parse_query

V = Variable


class TestConstruction:
    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([], ())

    def test_answer_must_occur_in_body(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([edge("x", "y")], (V("z"),))

    def test_boolean_query(self):
        assert parse_query("E(x,x)").is_boolean

    def test_repeated_answers_allowed(self):
        q = ConjunctiveQuery([edge("x", "y")], (V("x"), V("x")))
        assert q.answers == (V("x"), V("x"))


class TestVariableViews:
    def test_existential_variables(self):
        q = parse_query("E(x,y), E(y,z)", answers=("x",))
        assert q.existential_variables() == {V("y"), V("z")}

    def test_variables(self):
        q = parse_query("E(x,y)")
        assert q.variables() == {V("x"), V("y")}


class TestGraphViews:
    def test_dag_detection(self):
        assert parse_query("E(x,y), E(y,z)").is_dag()
        assert not parse_query("E(x,y), E(y,x)").is_dag()

    def test_loop_is_cycle(self):
        assert not parse_query("E(x,x)").is_dag()

    def test_reachability_order(self):
        q = parse_query("E(x,y), E(y,z)")
        order = q.reachability_order()
        assert order.maximal_elements() == {V("z")}

    def test_connectivity(self):
        assert parse_query("E(x,y), E(y,z)").is_connected()
        assert not parse_query("E(x,y), E(u,v)").is_connected()

    def test_unary_atoms_connect_via_shared_terms(self):
        q = parse_query("E(x,y), P(y)")
        assert q.is_connected()


class TestOperations:
    def test_apply_substitution(self):
        q = parse_query("E(x,y)", answers=("x", "y"))
        mapped = q.apply(Substitution({V("y"): V("x")}))
        assert mapped.atoms == frozenset([edge("x", "x")])
        assert mapped.answers == (V("x"), V("x"))

    def test_apply_rejects_constant_answers(self):
        from repro.logic.terms import Constant

        q = parse_query("E(x,y)", answers=("x",))
        with pytest.raises(ValueError):
            q.apply(Substitution({V("x"): Constant("a")}))

    def test_rename_fresh_disjoint(self):
        q = parse_query("E(x,y)", answers=("x",))
        renamed, _ = q.rename_fresh(FreshSupply("_q"))
        assert not (renamed.variables() & q.variables())

    def test_boolean_drops_answers(self):
        q = parse_query("E(x,y)", answers=("x",))
        assert q.boolean().is_boolean


class TestUCQ:
    def test_deduplication(self):
        q = parse_query("E(x,y)", answers=("x", "y"))
        assert len(UCQ([q, q])) == 1

    def test_answer_arity_enforced(self):
        binary = parse_query("E(x,y)", answers=("x", "y"))
        unary = parse_query("E(x,y)", answers=("x",))
        with pytest.raises(ValueError):
            UCQ([binary, unary])

    def test_disjunct_answers_must_specialize(self):
        main = parse_query("E(x,y)", answers=("x", "y"))
        merged = parse_query("E(x,x)", answers=("x", "x"))
        combined = UCQ([main, merged], answers=main.answers)
        assert len(combined) == 2

    def test_fresh_answer_tuple_rejected(self):
        main = parse_query("E(x,y)", answers=("x", "y"))
        alien = parse_query("E(u,v)", answers=("u", "v"))
        with pytest.raises(ValueError):
            UCQ([main, alien])

    def test_union(self):
        a = parse_query("E(x,y)", answers=("x", "y"))
        b = parse_query("E(x,y), E(y,y)", answers=("x", "y"))
        assert len(UCQ([a]).union(UCQ([b]))) == 2

    def test_max_disjunct_size(self):
        a = parse_query("E(x,y)", answers=())
        b = parse_query("E(x,y), E(y,z)", answers=())
        assert UCQ([a, b]).max_disjunct_size() == 2

    def test_empty_needs_answers(self):
        with pytest.raises(ValueError):
            UCQ([])
        empty = UCQ([], answers=())
        assert len(empty) == 0
