"""Unit tests for the unified telemetry: registry, traces, wire timings."""

from __future__ import annotations

import json

import pytest

from repro.chase.oblivious import oblivious_chase
from repro.chase.restricted import restricted_chase
from repro.engine.config import EngineConfig
from repro.engine.wire import REPLY_TIMINGS, pack_reply, unpack_reply
from repro.engine.workers import TRANSPORT_STATS
from repro.logic.homomorphisms import MATCHER_STATS
from repro.obs import (
    PHASES,
    TRACE_SCHEMA_VERSION,
    MetricsRegistry,
    RoundRecorder,
    RunTrace,
    default_registry,
    diff_snapshots,
    reset_all,
)
from repro.rewriting.datalog import semi_naive_closure
from repro.rules.parser import parse_instance, parse_rules
from repro.rules.rule import INSTANTIATION_STATS


class FakeStats:
    def __init__(self):
        self.value = 0

    def snapshot(self):
        return {"value": self.value}

    def reset(self):
        self.value = 0


MIXED_RULES = """
E(x,y) -> exists z. E(y,z)
E(x,y) -> Q(x)
Q(x) -> R(x)
"""


def run_traced(engine, **kwargs):
    rules = parse_rules(MIXED_RULES)
    instance = parse_instance("E(a,b), E(b,c)")
    trace = RunTrace()
    result = oblivious_chase(
        instance, rules, max_levels=4, engine=engine, trace=trace, **kwargs
    )
    return result, trace


class TestRegistry:
    def test_default_registry_names_the_stats_globals(self):
        from repro.serving.stats import SERVING_STATS

        registry = default_registry()
        assert registry.names() == (
            "matcher",
            "instantiation",
            "transport",
            "serving",
        )
        assert registry.group("matcher") is MATCHER_STATS
        assert registry.group("instantiation") is INSTANTIATION_STATS
        assert registry.group("transport") is TRANSPORT_STATS
        assert registry.group("serving") is SERVING_STATS

    def test_snapshot_covers_every_group(self):
        snapshot = default_registry().snapshot()
        assert set(snapshot) == {
            "matcher",
            "instantiation",
            "transport",
            "serving",
        }
        assert snapshot["instantiation"] == {"heads": INSTANTIATION_STATS.heads}

    def test_reset_all_zeroes_groups(self):
        MATCHER_STATS.searches += 7
        INSTANTIATION_STATS.heads += 3
        reset_all()
        assert MATCHER_STATS.searches == 0
        assert INSTANTIATION_STATS.heads == 0
        assert TRANSPORT_STATS.bytes_sent == 0

    def test_register_validates_the_protocol(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError):
            registry.register("bad", object())

    def test_register_same_object_is_idempotent(self):
        registry = MetricsRegistry()
        group = FakeStats()
        registry.register("g", group)
        registry.register("g", group)
        assert registry.group("g") is group

    def test_register_conflicting_object_raises(self):
        registry = MetricsRegistry()
        registry.register("g", FakeStats())
        with pytest.raises(ValueError):
            registry.register("g", FakeStats())

    def test_unknown_group_raises_with_names(self):
        with pytest.raises(KeyError, match="matcher"):
            MetricsRegistry().group("matcher")

    def test_diff_snapshots_semantics(self):
        before = {"a": 1, "nested": {"x": 2}, "tag": "t"}
        after = {"a": 4, "nested": {"x": 5, "y": 1}, "tag": "t2", "new": 2}
        delta = diff_snapshots(before, after)
        assert delta == {
            "a": 3,
            "nested": {"x": 3, "y": 1},
            "tag": "t2",
            "new": 2,
        }

    def test_collect_scope_isolates_a_run(self):
        registry = MetricsRegistry()
        group = FakeStats()
        registry.register("g", group)
        group.value = 10
        with registry.collect() as scope:
            group.value += 5
        assert scope.delta == {"g": {"value": 5}}
        assert group.value == 15  # never reset by the scope

    def test_collect_scopes_nest(self):
        registry = MetricsRegistry()
        group = registry.register("g", FakeStats())
        with registry.collect() as outer:
            group.value += 1
            with registry.collect() as inner:
                group.value += 2
            group.value += 4
        assert inner.delta == {"g": {"value": 2}}
        assert outer.delta == {"g": {"value": 7}}

    def test_collect_isolates_sequential_chase_runs(self):
        rules = parse_rules(MIXED_RULES)
        instance = parse_instance("E(a,b)")
        first = oblivious_chase(instance, rules, max_levels=2)
        second = oblivious_chase(instance, rules, max_levels=2)
        # Same work -> same scoped delta, even though the underlying
        # globals accumulated across both runs.
        assert first.telemetry == second.telemetry


class TestRoundRecorder:
    def test_phases_start_at_zero_in_order(self):
        recorder = RoundRecorder(1)
        assert tuple(recorder.phases) == PHASES
        assert all(v == 0.0 for v in recorder.phases.values())

    def test_negative_additions_clamp(self):
        recorder = RoundRecorder(1)
        recorder.add_phase("gate", -1.0)
        assert recorder.phases["gate"] == 0.0

    def test_outer_phase_excludes_inner_time(self):
        recorder = RoundRecorder(1)
        with recorder.outer_phase("fire"):
            recorder.add_phase("record", 100.0)  # dwarfs the real elapsed
        assert recorder.phases["record"] == 100.0
        assert recorder.phases["fire"] == 0.0  # clamped: elapsed << inner


ENGINE_MATRIX = [
    pytest.param("delta", id="delta"),
    pytest.param("naive", id="naive"),
    pytest.param(EngineConfig("parallel", workers=2), id="parallel-w2"),
    pytest.param(
        EngineConfig("persistent", workers=2, shards=4), id="persistent-w2-s4"
    ),
]


class TestRunTrace:
    def test_round_records_have_the_schema_fields(self):
        result, trace = run_traced("delta")
        assert trace.schema_version == TRACE_SCHEMA_VERSION
        assert trace.meta["engine"] == "delta"
        assert trace.meta["variant"] == "chase"
        assert len(trace.rounds) == result.levels_completed
        for record in trace.rounds:
            assert record["type"] == "round"
            assert tuple(record["phases"]) == PHASES
            for value in record["phases"].values():
                assert value >= 0.0
            assert record["plan"] == "batched"
            assert record["triggers"] >= record["applied"] >= 0
            assert set(record["transport"]) == {
                "bytes_sent",
                "bytes_received",
            }
            assert set(record["worker"]) == {
                "decode_s",
                "execute_s",
                "encode_s",
            }
        assert trace.summary["terminated"] is False
        assert trace.summary["levels"] == result.levels_completed

    @pytest.mark.parametrize("engine", ENGINE_MATRIX)
    def test_deterministic_fields_match_the_delta_reference(self, engine):
        reference, ref_trace = run_traced("delta")
        result, trace = run_traced(engine)
        assert result.instance == reference.instance
        deterministic = [
            {
                key: record[key]
                for key in ("round", "plan", "triggers", "applied", "new_atoms")
            }
            for record in trace.rounds
        ]
        expected = [
            {
                key: record[key]
                for key in ("round", "plan", "triggers", "applied", "new_atoms")
            }
            for record in ref_trace.rounds
        ]
        assert deterministic == expected

    def test_delta_atoms_tracks_the_enumeration_delta(self):
        _, trace = run_traced("delta")
        # The seed delta: the two E atoms plus the implicit top atom.
        assert trace.rounds[0]["delta_atoms"] == 3
        assert all(r["delta_atoms"] is not None for r in trace.rounds)
        _, naive_trace = run_traced("naive")
        assert all(r["delta_atoms"] is None for r in naive_trace.rounds)

    def test_persistent_rounds_carry_transport_and_routing(self):
        _, trace = run_traced(EngineConfig("persistent", workers=2, shards=4))
        assert trace.meta["shards"] == 4
        for record in trace.rounds:
            assert record["transport"]["bytes_sent"] > 0
            assert len(record["shard_weights"]) == 4
            for value in record["worker"].values():
                assert value >= 0.0
        # Worker execute time was actually measured somewhere in the run.
        assert sum(r["worker"]["execute_s"] for r in trace.rounds) > 0.0

    def test_in_process_engines_have_no_transport(self):
        _, trace = run_traced("delta")
        for record in trace.rounds:
            assert record["transport"] == {
                "bytes_sent": 0,
                "bytes_received": 0,
            }
            assert record["shard_weights"] is None

    def test_jsonl_round_trips(self, tmp_path):
        _, trace = run_traced("delta")
        path = trace.to_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "run"
        assert header["schema_version"] == TRACE_SCHEMA_VERSION
        back = RunTrace.from_jsonl(path)
        assert back.meta == trace.meta
        assert back.rounds == trace.rounds
        assert back.summary == trace.summary

    def test_summary_table_renders_each_round(self):
        _, trace = run_traced("delta")
        table = trace.summary_table()
        assert "enumerate ms" in table
        assert "total" in table
        assert table.count("batched") == len(trace.rounds)

    def test_untraced_runs_stay_untraced(self):
        rules = parse_rules(MIXED_RULES)
        instance = parse_instance("E(a,b), E(b,c)")
        result = oblivious_chase(instance, rules, max_levels=4)
        traced, trace = run_traced("delta")
        assert result.instance == traced.instance
        assert len(trace.rounds) == 4


class TestResultTelemetry:
    def test_chase_result_carries_registry_deltas(self):
        result, _ = run_traced("delta")
        telemetry = result.telemetry
        assert telemetry["schema_version"] == TRACE_SCHEMA_VERSION
        registry = telemetry["registry"]
        assert set(registry) == {
            "matcher",
            "instantiation",
            "transport",
            "serving",
        }
        assert registry["matcher"]["searches"] > 0
        assert registry["instantiation"]["heads"] > 0

    def test_telemetry_attaches_without_a_trace(self):
        rules = parse_rules(MIXED_RULES)
        result = oblivious_chase(
            parse_instance("E(a,b)"), rules, max_levels=2
        )
        assert result.telemetry["schema_version"] == TRACE_SCHEMA_VERSION

    def test_persistent_telemetry_includes_worker_seconds(self):
        result, _ = run_traced(
            EngineConfig("persistent", workers=2, shards=4)
        )
        transport = result.telemetry["registry"]["transport"]
        assert transport["bytes_sent"] > 0
        worker_seconds = transport["worker_seconds"]
        assert "seed" in worker_seconds
        for timing in worker_seconds.values():
            assert timing["replies"] > 0
            assert timing["decode_s"] >= 0.0


class TestVariantPlans:
    def test_restricted_split_and_interleaved_plans(self):
        rules = parse_rules(MIXED_RULES)
        instance = parse_instance("E(a,b), E(b,c)")
        split_trace = RunTrace()
        restricted_chase(
            instance, rules, max_rounds=4, trace=split_trace
        )
        assert {r["plan"] for r in split_trace.rounds} == {"split"}

        interleaved_trace = RunTrace()
        restricted_chase(
            instance,
            rules,
            max_rounds=4,
            delta_satisfaction=False,
            trace=interleaved_trace,
        )
        assert {r["plan"] for r in interleaved_trace.rounds} == {
            "interleaved"
        }
        # Both paths agree on the deterministic fields.
        pick = lambda t: [
            (r["round"], r["triggers"], r["applied"], r["new_atoms"])
            for r in t.rounds
        ]
        assert pick(split_trace) == pick(interleaved_trace)

    def test_restricted_gate_time_lands_on_gate(self):
        rules = parse_rules(MIXED_RULES)
        trace = RunTrace()
        restricted_chase(
            parse_instance("E(a,b), E(b,c)"), rules, max_rounds=4, trace=trace
        )
        assert sum(r["phases"]["gate"] for r in trace.rounds) > 0.0

    def test_closure_rounds_use_the_derive_plan(self):
        rules = parse_rules("E(x,y), E(y,z) -> E(x,z)")
        instance = parse_instance("E(a,b), E(b,c), E(c,d), E(d,e)")
        trace = RunTrace()
        closed = semi_naive_closure(instance, rules, trace=trace)
        assert len(closed) > len(instance)
        assert {r["plan"] for r in trace.rounds} == {"derive"}
        assert trace.meta["mode"] == "derivation"
        assert trace.summary["terminated"] is True
        last = trace.rounds[-1]
        assert last["new_atoms"] == 0  # the fixpoint round


class TestWireReplyEnvelope:
    def test_timings_pack_to_a_fixed_size(self):
        status, value, timings = unpack_reply(
            pack_reply("ok", [1, 2], (0.25, 0.5, 0.125))
        )
        assert (status, value) == ("ok", [1, 2])
        assert timings == (0.25, 0.5, 0.125)
        assert len(pack_reply("ok", None, (0.0, 0.0, 0.0))[2]) == (
            REPLY_TIMINGS.size
        )

    def test_untimed_and_legacy_replies_tolerated(self):
        assert unpack_reply(pack_reply("error", "boom")) == (
            "error",
            "boom",
            None,
        )
        assert unpack_reply(("ok", 42)) == ("ok", 42, None)

    def test_worker_timings_aggregate_per_command(self):
        TRANSPORT_STATS.reset()
        TRANSPORT_STATS.record_worker_timings("fire", (0.1, 0.2, 0.3))
        TRANSPORT_STATS.record_worker_timings("fire", (0.1, 0.2, 0.3))
        timing = TRANSPORT_STATS.worker_timing("fire")
        assert timing["replies"] == 2
        assert timing["decode_s"] == pytest.approx(0.2)
        totals = TRANSPORT_STATS.worker_totals()
        assert totals["execute_s"] == pytest.approx(0.4)
        assert TRANSPORT_STATS.snapshot()["worker_seconds"]["fire"][
            "encode_s"
        ] == pytest.approx(0.6)


class TestCli:
    def test_chase_trace_and_stats_flags(self, tmp_path, capsys):
        from repro.cli import main

        rules_path = tmp_path / "rules.dlg"
        rules_path.write_text("E(x,y) -> exists z. E(y,z)\n")
        trace_path = tmp_path / "run.jsonl"
        status = main(
            [
                "chase",
                str(rules_path),
                "--instance",
                "E(a,b)",
                "--levels",
                "3",
                "--trace",
                str(trace_path),
                "--stats",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "trace: 3 round records" in out
        assert "telemetry (run deltas)" in out
        back = RunTrace.from_jsonl(trace_path)
        assert len(back.rounds) == 3

    def test_list_engines_documents_transport_telemetry(self, capsys):
        from repro.cli import main

        assert main(["chase", "--list-engines"]) == 0
        out = capsys.readouterr().out
        assert "telemetry=transport" in out

    def test_analyze_json_embeds_telemetry(self, tmp_path, capsys):
        from repro.cli import main

        rules_path = tmp_path / "rules.dlg"
        rules_path.write_text("E(x,y) -> E(y,x)\n")
        assert main(["analyze", str(rules_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["telemetry"]["schema_version"] == TRACE_SCHEMA_VERSION
        assert "matcher" in report["telemetry"]["registry"]
