"""Unit tests for rules: frontier/existential derivation, renaming."""

import pytest

from repro.logic.atoms import atom, edge
from repro.logic.terms import FreshSupply, Variable
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet, ruleset

V = Variable


class TestConstruction:
    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            Rule([], [edge("x", "y")])

    def test_empty_head_rejected(self):
        with pytest.raises(ValueError):
            Rule([edge("x", "y")], [])

    def test_label_not_part_of_identity(self):
        left = Rule([edge("x", "y")], [edge("y", "x")], label="a")
        right = Rule([edge("x", "y")], [edge("y", "x")], label="b")
        assert left == right
        assert hash(left) == hash(right)


class TestVariableSets:
    def _rule(self):
        # E(x, y) -> exists z. E(y, z)
        return Rule([edge("x", "y")], [edge("y", "z")])

    def test_frontier(self):
        assert self._rule().frontier() == {V("y")}

    def test_existential(self):
        assert self._rule().existential_variables() == {V("z")}

    def test_datalog_detection(self):
        transitive = Rule(
            [edge("x", "y"), edge("y", "z")], [edge("x", "z")]
        )
        assert transitive.is_datalog
        assert not self._rule().is_datalog

    def test_body_and_head_predicates(self):
        rule = Rule([atom("P", "x")], [atom("Q", "x")])
        assert {p.name for p in rule.body_predicates()} == {"P"}
        assert {p.name for p in rule.head_predicates()} == {"Q"}

    def test_str_shows_existentials(self):
        assert "exists z" in str(self._rule())


class TestRenaming:
    def test_rename_fresh_preserves_shape(self):
        rule = Rule([edge("x", "y")], [edge("y", "z")])
        renamed, sigma = rule.rename_fresh(FreshSupply("_t"))
        assert len(renamed.body) == 1 and len(renamed.head) == 1
        assert renamed.frontier() == {
            sigma.apply_term(V("y"))
        }

    def test_rename_fresh_disjoint_from_original(self):
        rule = Rule([edge("x", "y")], [edge("y", "z")])
        renamed, _ = rule.rename_fresh(FreshSupply("_t"))
        assert not (renamed.variables() & rule.variables())


class TestRuleSet:
    def test_deduplication_preserves_order(self):
        r1 = Rule([edge("x", "y")], [edge("y", "x")])
        r2 = Rule([edge("x", "y")], [edge("y", "z")])
        rs = RuleSet([r1, r2, r1])
        assert list(rs) == [r1, r2]

    def test_signature_collects_predicates(self):
        rs = ruleset(Rule([atom("P", "x")], [atom("Q", "x")]))
        assert {p.name for p in rs.signature()} == {"P", "Q"}

    def test_datalog_existential_split(self):
        datalog = Rule([edge("x", "y"), edge("y", "z")], [edge("x", "z")])
        existential = Rule([edge("x", "y")], [edge("y", "z")])
        rs = RuleSet([datalog, existential])
        assert list(rs.datalog_rules()) == [datalog]
        assert list(rs.existential_rules()) == [existential]

    def test_union_operator(self):
        r1 = Rule([edge("x", "y")], [edge("y", "x")])
        r2 = Rule([edge("x", "y")], [edge("y", "z")])
        assert len(RuleSet([r1]) | RuleSet([r2])) == 2

    def test_with_rule(self):
        r1 = Rule([edge("x", "y")], [edge("y", "x")])
        rs = RuleSet([]).with_rule(r1) if False else RuleSet([r1])
        assert r1 in rs
