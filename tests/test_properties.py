"""Property-based tests (hypothesis) on the library's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures.multiset import EMPTY, Multiset
from repro.io.serialization import (
    instance_from_dict,
    instance_to_dict,
    rule_from_dict,
    rule_to_dict,
)
from repro.logic.atoms import Atom
from repro.logic.homomorphisms import find_homomorphism, has_homomorphism
from repro.logic.instances import Instance
from repro.logic.predicates import Predicate
from repro.logic.substitutions import (
    Substitution,
    is_specialization,
    specializations,
    tuples_compatible,
)
from repro.logic.terms import Constant, Variable


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

small_ints = st.integers(min_value=0, max_value=5)
multisets = st.lists(small_ints, max_size=6).map(Multiset)

variable_names = st.sampled_from(["x", "y", "z", "u", "v"])
variables = variable_names.map(Variable)
constants = st.sampled_from(["A", "B", "C"]).map(Constant)
terms = st.one_of(variables, constants)

predicates = st.sampled_from(
    [Predicate("E", 2), Predicate("F", 2), Predicate("P", 1)]
)


@st.composite
def atoms(draw):
    predicate = draw(predicates)
    args = [draw(terms) for _ in range(predicate.arity)]
    return Atom(predicate, args)


atom_sets = st.lists(atoms(), min_size=1, max_size=5)


# ----------------------------------------------------------------------
# Multiset order (Lemma 8 and §2.4 algebra)
# ----------------------------------------------------------------------

class TestMultisetProperties:
    @given(multisets, multisets)
    def test_lex_total(self, left, right):
        assert (left < right) + (right < left) + (left == right) == 1

    @given(multisets, multisets, multisets)
    def test_lex_transitive(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(multisets)
    def test_empty_is_minimum(self, m):
        assert EMPTY <= m

    @given(multisets)
    def test_lemma8_no_infinite_descent(self, start):
        """Every strictly descending chain from a size-bounded multiset is
        finite — walk greedily downward and require termination."""
        seen = 0
        current = start
        # remove_one_maximum strictly decreases <_lex; iterate to empty.
        while current and seen < 100:
            smaller = current.remove_one_maximum()
            assert smaller < current
            current = smaller
            seen += 1
        assert seen <= 6  # size bound: at most |start| steps

    @given(multisets, multisets)
    def test_union_size_additive(self, left, right):
        assert len(left.union(right)) == len(left) + len(right)

    @given(multisets, multisets)
    def test_difference_union_inverse(self, left, right):
        assert left.union(right).difference(right) == left

    @given(multisets, multisets)
    def test_intersection_commutes(self, left, right):
        assert left.intersection(right) == right.intersection(left)

    @given(multisets, multisets)
    def test_union_monotone_in_lex(self, left, extra):
        if extra:
            assert left < left.union(extra)


# ----------------------------------------------------------------------
# Substitutions and specializations (§2.1, Prop 6 prerequisites)
# ----------------------------------------------------------------------

class TestSubstitutionProperties:
    @given(st.lists(variables, min_size=1, max_size=4, unique=True))
    def test_specializations_are_specializations(self, vars_list):
        xs = tuple(vars_list)
        for ys in specializations(xs):
            assert is_specialization(xs, ys)
            assert tuples_compatible(xs, ys)

    @given(st.lists(variables, min_size=1, max_size=4, unique=True))
    def test_identity_specialization_first(self, vars_list):
        xs = tuple(vars_list)
        assert next(iter(specializations(xs))) == xs

    @given(atom_sets)
    def test_identity_substitution_fixes_atoms(self, atom_list):
        identity = Substitution.identity()
        assert identity.apply_atoms(atom_list) == set(atom_list)


# ----------------------------------------------------------------------
# Homomorphisms
# ----------------------------------------------------------------------

class TestHomomorphismProperties:
    @given(atom_sets)
    def test_reflexivity(self, atom_list):
        inst = Instance(atom_list, add_top=False)
        assert has_homomorphism(inst, inst)

    @given(atom_sets, atom_sets)
    @settings(max_examples=50, deadline=None)
    def test_composition_closure(self, left_atoms, right_atoms):
        """If A -> B then A maps into any superset of B too."""
        left = Instance(left_atoms, add_top=False)
        right = Instance(right_atoms, add_top=False)
        if has_homomorphism(left, right):
            bigger = Instance(
                list(right_atoms) + [Atom(Predicate("G", 1), [Constant("Z")])],
                add_top=False,
            )
            assert has_homomorphism(left, bigger)

    @given(atom_sets)
    @settings(max_examples=50, deadline=None)
    def test_found_homomorphism_is_valid(self, atom_list):
        inst = Instance(atom_list, add_top=False)
        hom = find_homomorphism(atom_list, inst)
        assert hom is not None
        assert {hom.apply_atom(a) for a in atom_list} <= inst.atoms()


# ----------------------------------------------------------------------
# Serialization round-trips
# ----------------------------------------------------------------------

class TestSerializationProperties:
    @given(atom_sets)
    def test_instance_roundtrip(self, atom_list):
        inst = Instance(atom_list, add_top=True)
        assert instance_from_dict(instance_to_dict(inst)) == inst

    @given(atom_sets, atom_sets)
    def test_rule_roundtrip(self, body, head):
        from repro.rules.rule import Rule

        rule = Rule(body, head)
        assert rule_from_dict(rule_to_dict(rule)) == rule


# ----------------------------------------------------------------------
# Chase invariants
# ----------------------------------------------------------------------

class TestChaseProperties:
    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_prefix_monotone(self, levels):
        from repro.chase.oblivious import oblivious_chase
        from repro.rules.parser import parse_instance, parse_rules

        rules = parse_rules("E(x,y) -> exists z. E(y,z)")
        result = oblivious_chase(
            parse_instance("E(a,b)"), rules, max_levels=levels
        )
        for level in range(result.levels_completed):
            assert result.prefix(level).atoms() <= result.prefix(
                level + 1
            ).atoms()

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_tournament_instance_always_tournament(self, seed):
        from repro.core.egraph import egraph
        from repro.core.tournament import is_tournament
        from repro.corpus.generators import tournament_instance

        inst = tournament_instance(5, seed=seed)
        graph = egraph(inst)
        assert is_tournament(graph, graph.nodes)
