"""Shared-memory transport: segment lifecycle, staleness, pool wiring.

Covers :mod:`repro.engine.shm` directly (publish/collect/reuse cycles,
generation tokens, teardown leaving ``/dev/shm`` clean) and the
:class:`~repro.engine.workers.WorkerPool` integration (payloads above
the threshold leave the pipes, broken-pool teardown reaps segments,
resize keeps the symbol tables warm).  Everything here needs working
shared memory, so the whole module skips on constrained runners — the
pipe-only transport those fall back to is exercised everywhere else.
"""

from __future__ import annotations

import pytest

from repro.engine import TRANSPORT_STATS, WorkerPool
from repro.engine.shm import (
    SegmentPool,
    SegmentReader,
    SegmentRef,
    active_segments,
    maybe_publish,
    resolve,
    shm_available,
)
from repro.errors import ChaseError
from repro.logic.atoms import atom
from repro.logic.instances import Instance
from repro.rules.parser import parse_rules

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this runner"
)


@pytest.fixture()
def pool():
    pool = SegmentPool(threshold=64)
    yield pool
    pool.close()
    assert active_segments() == frozenset()


# ----------------------------------------------------------------------
# SegmentPool / SegmentReader lifecycle
# ----------------------------------------------------------------------


class TestSegmentLifecycle:
    def test_publish_read_roundtrip(self, pool):
        data = bytes(range(256)) * 8
        ref = pool.publish(data)
        assert isinstance(ref, SegmentRef)
        assert ref.length == len(data)
        reader = SegmentReader()
        try:
            assert reader.read(ref) == data
        finally:
            reader.close()

    def test_collect_reuses_segment_with_generation_bump(self, pool):
        first = pool.publish(b"x" * 100)
        pool.collect()
        second = pool.publish(b"y" * 100)
        assert second.name == first.name
        assert second.generation == first.generation + 1
        assert pool.segments_created == 1
        assert pool.publishes == 2

    def test_pending_segments_are_not_reused(self, pool):
        first = pool.publish(b"x" * 100)
        second = pool.publish(b"y" * 100)
        # No collect between the publishes: both payloads must be live
        # at once, so they land in distinct segments.
        assert second.name != first.name
        reader = SegmentReader()
        try:
            assert reader.read(first) == b"x" * 100
            assert reader.read(second) == b"y" * 100
        finally:
            reader.close()

    def test_stale_ref_raises_loudly(self, pool):
        stale = pool.publish(b"a" * 100)
        pool.collect()
        pool.publish(b"b" * 100)  # recycles the segment, bumps generation
        reader = SegmentReader()
        try:
            with pytest.raises(ChaseError, match="stale shm ref"):
                reader.read(stale)
        finally:
            reader.close()

    def test_vanished_segment_raises(self):
        pool = SegmentPool(threshold=64)
        ref = pool.publish(b"z" * 100)
        pool.close()
        reader = SegmentReader()
        try:
            with pytest.raises(ChaseError, match="vanished"):
                reader.read(ref)
        finally:
            reader.close()

    def test_close_unlinks_pending_and_free(self):
        pool = SegmentPool(threshold=64)
        pool.publish(b"p" * 100)  # pending
        pool.publish(b"q" * 5000)  # pending, second segment
        pool.collect()
        pool.publish(b"r" * 100)  # one back in flight
        assert len(active_segments()) == 2
        pool.close()
        assert active_segments() == frozenset()
        pool.close()  # idempotent
        with pytest.raises(ChaseError, match="closed"):
            pool.publish(b"s" * 100)

    def test_best_fit_reuse_prefers_smallest_segment(self, pool):
        small = pool.publish(b"s" * 100)
        large = pool.publish(b"l" * 60_000)
        pool.collect()
        # A small payload must land back in the small segment, not
        # squat in the big one and force a fresh allocation later.
        again = pool.publish(b"t" * 100)
        assert again.name == small.name
        big_again = pool.publish(b"u" * 60_000)
        assert big_again.name == large.name
        assert pool.segments_created == 2

    def test_maybe_publish_threshold_routing(self, pool):
        small = maybe_publish(pool, b"tiny")
        assert small == b"tiny"  # below threshold: raw bytes
        big = maybe_publish(pool, b"x" * 64)
        assert isinstance(big, SegmentRef)
        assert maybe_publish(None, b"x" * 64) == b"x" * 64  # shm off

    def test_resolve_is_inverse_of_maybe_publish(self, pool):
        reader = SegmentReader()
        try:
            for payload in (b"tiny", b"x" * 500):
                shipped = maybe_publish(pool, payload)
                assert resolve(reader, shipped) == payload
        finally:
            reader.close()

    def test_resolve_ref_without_reader_raises(self, pool):
        ref = pool.publish(b"x" * 100)
        with pytest.raises(ChaseError, match="without a reader"):
            resolve(None, ref)

    def test_reader_attach_cache_survives_reuse(self, pool):
        reader = SegmentReader()
        try:
            for round_no in range(5):
                ref = pool.publish(bytes([round_no]) * 200)
                assert reader.read(ref) == bytes([round_no]) * 200
                pool.collect()
            # One segment, attached once, read five times.
            assert pool.segments_created == 1
            assert len(reader._attached) == 1
        finally:
            reader.close()


# ----------------------------------------------------------------------
# WorkerPool integration
# ----------------------------------------------------------------------

RULES = tuple(parse_rules("E(x,y), E(y,z) -> E(x,z)"))


def _chain(n: int) -> Instance:
    names = [f"v{i}" for i in range(n + 1)]
    return Instance(atom("E", a, b) for a, b in zip(names, names[1:]))


def _round_images(replies) -> set:
    return {
        image
        for per_rule in replies
        for found in per_rule
        for image in found
    }


class TestWorkerPoolSharedMemory:
    def test_payloads_leave_the_pipe(self):
        instance = _chain(40)
        delta = instance.sorted_atoms()
        TRANSPORT_STATS.reset()
        with WorkerPool(2) as pool:
            plain = pool.run_round("enumerate", RULES, instance, [delta, []])
        pipe_only = TRANSPORT_STATS.snapshot()

        TRANSPORT_STATS.reset()
        with WorkerPool(2, shared_memory=True, shm_threshold=64) as shm_pool:
            shipped = shm_pool.run_round(
                "enumerate", RULES, instance, [delta, []]
            )
            assert shm_pool._segment_pool is not None
        with_shm = TRANSPORT_STATS.snapshot()

        assert _round_images(shipped) == _round_images(plain)
        assert with_shm["shm_bytes"] > 0
        assert with_shm["shm_publishes"] >= 1
        assert with_shm["bytes_sent"] < pipe_only["bytes_sent"]
        # A payload's bytes land on exactly one channel, so shm bytes
        # are NOT double-counted into the pipe totals.
        seed = with_shm["commands"]["seed"]
        assert seed["shm_bytes"] > 0
        assert seed["bytes_sent"] < pipe_only["commands"]["seed"]["bytes_sent"]
        assert active_segments() == frozenset()

    def test_segments_recycled_across_rounds(self):
        instance = _chain(30)
        with WorkerPool(2, shared_memory=True, shm_threshold=64) as pool:
            pool.run_round(
                "enumerate", RULES, instance, [instance.sorted_atoms(), []]
            )
            created_after_seed = pool._segment_pool.segments_created
            for i in range(3):
                extra = atom("E", f"w{i}", f"w{i + 1}")
                instance.add(extra)
                pool.run_round("enumerate", RULES, instance, [[extra], []])
            # Lockstep release: every round's segments were collected
            # after the gather, so steady-state rounds reuse the pool
            # instead of allocating per round.
            assert (
                pool._segment_pool.segments_created
                <= created_after_seed + 1
            )
        assert active_segments() == frozenset()

    def test_small_payloads_stay_on_pipe(self):
        instance = Instance([atom("E", "a", "b")])
        TRANSPORT_STATS.reset()
        with WorkerPool(1, shared_memory=True, shm_threshold=1 << 20) as pool:
            pool.run_round(
                "enumerate", RULES, instance, [instance.sorted_atoms()]
            )
        assert TRANSPORT_STATS.shm_publishes == 0
        assert TRANSPORT_STATS.bytes_sent > 0
        assert active_segments() == frozenset()

    def test_broken_pool_teardown_reaps_segments(self):
        instance = _chain(40)
        pool = WorkerPool(2, shared_memory=True, shm_threshold=64)
        try:
            pool.run_round(
                "enumerate", RULES, instance, [instance.sorted_atoms(), []]
            )
            # Kill a worker mid-run: the next round's gather fails, the
            # pool goes broken with segments pending.
            pool._processes[1].terminate()
            pool._processes[1].join(timeout=5.0)
            extra = atom("E", "x0", "x1")
            instance.add(extra)
            with pytest.raises(ChaseError):
                pool.run_round("enumerate", RULES, instance, [[extra] * 50, []])
            assert pool.broken
        finally:
            pool.close()
        # The broken-pool path closed the segment pool: nothing strands
        # in /dev/shm even though a ref may have been in flight.
        assert active_segments() == frozenset()

    def test_resize_keeps_symbol_tables_warm(self):
        instance = _chain(20)
        delta = instance.sorted_atoms()
        with WorkerPool(2, shared_memory=True, shm_threshold=64) as pool:
            first = pool.run_round("enumerate", RULES, instance, [delta, []])
            marks_before = list(pool._marks)
            assert marks_before[0] != (0, 0)  # symbols were shipped

            pool.resize(3)
            # Survivors keep their table high-water marks; the new
            # worker starts empty.
            assert pool._marks[:2] == marks_before
            assert pool._marks[2] == (0, 0)

            TRANSPORT_STATS.reset()
            again = pool.run_round(
                "enumerate", RULES, instance, [delta, [], []]
            )
            # The reseed after resize ships rows to everyone but full
            # symbol tables only to the fresh worker: the survivors'
            # seed envelopes carry no segment worth of symbols, so the
            # seed happened exactly once post-resize.
            assert TRANSPORT_STATS.seeds == 1
            assert _round_images(again) == _round_images(first)

            pool.resize(1)
            assert pool._marks == marks_before[:1]
            shrunk = pool.run_round("enumerate", RULES, instance, [delta])
            assert _round_images(shrunk) == _round_images(first)
        assert active_segments() == frozenset()

    def test_shared_memory_with_object_replicas(self):
        # shm is a transport concern: it composes with columnar=False
        # (object replicas decode the same buffers off the segments).
        instance = _chain(15)
        delta = instance.sorted_atoms()
        with WorkerPool(2, columnar=False, shared_memory=True,
                        shm_threshold=64) as pool:
            obj = pool.run_round("enumerate", RULES, instance, [delta, []])
        with WorkerPool(2) as pool:
            col = pool.run_round("enumerate", RULES, instance, [delta, []])
        assert _round_images(obj) == _round_images(col)
        assert active_segments() == frozenset()
