"""Unit tests for piece-unifiers: soundness of each validity rule."""

from repro.logic.terms import Variable
from repro.rewriting.piece_unifier import one_step_rewritings, piece_unifiers
from repro.rules.parser import parse_query, parse_rule

V = Variable


class TestBasicUnification:
    def test_single_atom_unifies_with_head(self):
        rule = parse_rule("P(x,y) -> exists z. E(y,z)")
        q = parse_query("E(u,v)")
        results = list(piece_unifiers(q, rule))
        assert len(results) == 1
        rewritten = results[0].rewritten
        assert {a.predicate.name for a in rewritten.atoms} == {"P"}

    def test_no_shared_predicate_no_unifier(self):
        rule = parse_rule("P(x,y) -> Q(x,y)")
        q = parse_query("E(u,v)")
        assert list(piece_unifiers(q, rule)) == []

    def test_remainder_atoms_kept(self):
        rule = parse_rule("P(x,y) -> exists z. E(y,z)")
        q = parse_query("E(u,v), F(u)")
        results = list(piece_unifiers(q, rule))
        assert len(results) == 1
        names = {a.predicate.name for a in results[0].rewritten.atoms}
        assert names == {"P", "F"}


class TestExistentialValidity:
    def test_existential_cannot_meet_shared_variable(self):
        # v occurs in another atom, so it cannot be unified with z.
        rule = parse_rule("P(x,y) -> exists z. E(y,z)")
        q = parse_query("E(u,v), F(v)")
        results = list(piece_unifiers(q, rule))
        assert results == []

    def test_existential_cannot_meet_answer_variable(self):
        rule = parse_rule("P(x,y) -> exists z. E(y,z)")
        q = parse_query("E(u,v)", answers=("v",))
        assert list(piece_unifiers(q, rule)) == []

    def test_frontier_position_unifies_freely(self):
        rule = parse_rule("P(x,y) -> exists z. E(y,z)")
        q = parse_query("E(u,v)", answers=("u",))
        results = list(piece_unifiers(q, rule))
        assert len(results) == 1
        assert results[0].rewritten.answers == (V("u"),)

    def test_loop_atom_cannot_unify_with_forward_head(self):
        # E(u,u) forces frontier y = existential z: invalid.
        rule = parse_rule("P(x,y) -> exists z. E(y,z)")
        q = parse_query("E(u,u)")
        assert list(piece_unifiers(q, rule)) == []

    def test_two_atom_piece_with_same_existential(self):
        # Both query atoms share w, which maps to the existential z: the
        # piece {E(u,w), F(v,w)} must be unified as a whole.
        rule = parse_rule("P(x,y) -> exists z. E(y,z), F(y,z)")
        q = parse_query("E(u,w), F(v,w)")
        results = list(piece_unifiers(q, rule))
        pieces = {len(r.unified_query_atoms) for r in results}
        assert 2 in pieces
        # The one-atom sub-pieces are invalid (w leaks outside).
        assert 1 not in pieces


class TestDatalogSteps:
    def test_datalog_rule_step(self):
        rule = parse_rule("E(x,y), E(y,z) -> E(x,z)")
        q = parse_query("E(u,v)")
        results = list(piece_unifiers(q, rule))
        assert len(results) == 1
        assert len(results[0].rewritten.atoms) == 2

    def test_one_step_rewritings_across_rules(self):
        from repro.rules.parser import parse_rules

        rules = parse_rules(
            """
            P(x,y) -> E(x,y)
            Q(x,y) -> E(x,y)
            """
        )
        q = parse_query("E(u,v)")
        results = one_step_rewritings(q, rules)
        names = {
            frozenset(a.predicate.name for a in r.atoms) for r in results
        }
        assert names == {frozenset({"P"}), frozenset({"Q"})}


class TestAnswerHandling:
    def test_answer_merge_produces_specialization(self):
        # Unifying both atoms with the same head atom merges u and v.
        rule = parse_rule("P(x) -> E(x,x)")
        q = parse_query("E(u,v)", answers=("u", "v"))
        results = list(piece_unifiers(q, rule))
        assert any(
            r.rewritten.answers[0] == r.rewritten.answers[1]
            for r in results
        )
