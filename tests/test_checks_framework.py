"""Framework tests: markers, fingerprints, baseline, driver — and the
self-check that the repo itself is clean modulo the committed baseline.
"""

import json
import pathlib
import textwrap

import pytest

from repro.checks.base import (
    Finding,
    SourceModule,
    assign_fingerprints,
    load_baseline,
)
from repro.checks.driver import all_passes, main, run_checks

REPO = pathlib.Path(__file__).resolve().parents[1]


def module(source, rel="src/repro/example.py"):
    return SourceModule.from_source(textwrap.dedent(source), rel)


# -- markers ----------------------------------------------------------


def test_hot_marker_attaches_to_the_next_def():
    mod = module(
        """
        # checks: hot
        def inner():
            pass
        """
    )
    func = mod.tree.body[0]
    assert mod.is_hot(func)


def test_allow_marker_requires_a_justification():
    mod = module(
        """
        # checks: allow[D101]
        x = 1
        """
    )
    assert [f.rule for f in mod.marker_findings] == ["C001"]
    assert "justification" in mod.marker_findings[0].message


def test_malformed_marker_is_a_finding():
    mod = module(
        """
        # checks: allow D101 -- missing brackets
        x = 1
        """
    )
    assert [f.rule for f in mod.marker_findings] == ["C001"]


def test_marker_syntax_inside_docstrings_is_inert():
    mod = module(
        '''
        def helper():
            """Document the marker: ``# checks: allow[D101]`` needs a why."""
        '''
    )
    assert mod.marker_findings == []
    assert mod.allows == {}


def test_allow_file_marker_covers_the_whole_module():
    mod = module(
        """
        # checks: allow-file[transport] -- fixture module for codec tests.
        x = 1
        """
    )
    finding = Finding("transport", "T201", mod.rel, 40, "pickled")
    assert mod.allowed(finding)


def test_multiline_justification_attributes_to_next_code_line():
    mod = module(
        """
        # checks: allow[D102] -- the justification runs long and wraps
        # onto a continuation comment line before the code.
        bucket = hash
        """
    )
    finding = Finding("determinism", "D102", mod.rel, 4, "bucketing")
    assert mod.allowed(finding)


# -- fingerprints -----------------------------------------------------


def test_fingerprint_is_content_addressed_not_line_addressed():
    a = Finding("hotpath", "H402", "src/x.py", 10, "alloc", snippet="y = set(z)")
    b = Finding("hotpath", "H402", "src/x.py", 99, "alloc", snippet="y =  set(z)")
    assign_fingerprints([a])
    assign_fingerprints([b])
    assert a.fingerprint == b.fingerprint


def test_identical_lines_get_distinct_fingerprints():
    a = Finding("hotpath", "H402", "src/x.py", 10, "alloc", snippet="y = set(z)")
    b = Finding("hotpath", "H402", "src/x.py", 20, "alloc", snippet="y = set(z)")
    assign_fingerprints([a, b])
    assert a.fingerprint and b.fingerprint
    assert a.fingerprint != b.fingerprint


# -- baseline ---------------------------------------------------------


def test_baseline_entry_without_justification_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps([{"fingerprint": "abc", "justification": " "}]))
    with pytest.raises(ValueError, match="justification"):
        load_baseline(path)


def test_committed_baseline_is_small_and_justified():
    entries = json.loads((REPO / "tools" / "checks_baseline.json").read_text())
    assert len(entries) <= 10
    for entry in entries:
        assert entry["justification"].strip()
        assert entry["fingerprint"]


# -- driver -----------------------------------------------------------


def test_all_five_passes_are_registered():
    assert [p.name for p in all_passes()] == [
        "determinism",
        "transport",
        "lifecycle",
        "hotpath",
        "stats-registry",
    ]


def test_run_checks_applies_marker_suppression(tmp_path):
    target = tmp_path / "src" / "repro" / "engine" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        textwrap.dedent(
            """
            def reply(value):
                return ("ok", value)
            """
        )
    )
    kept, allowed, modules = run_checks(tmp_path, ["src"])
    assert [f.rule for f in kept] == ["T204"]
    assert kept[0].fingerprint
    assert allowed == []
    assert len(modules) == 1


def test_syntax_error_becomes_a_finding(tmp_path):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n")
    kept, _, _ = run_checks(tmp_path, ["src"])
    assert [f.rule for f in kept] == ["E999"]


def test_repo_is_clean_modulo_committed_baseline(capsys):
    assert main(["--root", str(REPO)]) == 0
    out = capsys.readouterr().out
    assert "repro.checks: 5 passes" in out


def test_json_report_shape(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    assert main(["--root", str(REPO), "--json", str(report_path)]) == 0
    capsys.readouterr()
    report = json.loads(report_path.read_text())
    assert report["clean"] is True
    assert report["version"] == 1
    assert [p["name"] for p in report["passes"]] == [
        p.name for p in all_passes()
    ]
    assert report["findings"] == []
    assert report["stale_baseline"] == []
    assert {f["rule"] for f in report["baselined"]} == {"H402"}
    assert report["files"] > 100
