# Convenience entry points; all targets assume the repo root as cwd.
# CI (.github/workflows/ci.yml) runs exactly these targets, so a green
# `make lint test perf-smoke` locally is a green pipeline.

PY ?= python

.PHONY: test lint checks perf-smoke bench

# Tier-1 verification: the full unit/integration suite.
test:
	PYTHONPATH=src $(PY) -m pytest -x -q

# Static checks: ruff when installed (the CI path, via
# requirements-dev.txt), a stdlib AST fallback (syntax + unused imports)
# in hermetic environments without it — then the project-native
# repro.checks passes (determinism, transport-boundary, lifecycle,
# hot-path, stats-registry), all from the one lint.py entry point.
lint:
	$(PY) tools/lint.py src tests benchmarks tools

# The repro.checks driver alone (what the dedicated CI step runs, with
# a JSON report artifact).
checks:
	PYTHONPATH=src $(PY) -m repro.checks

# Reproducible engine-performance smoke: EXP-8 (chase/homomorphism/rewriting
# throughput), EXP-12 (incremental vs naive trigger enumeration), EXP-13
# (parallel engine vs sequential delta), EXP-14 (persistent delta-fed
# workers vs per-round context pickling), EXP-15 (delta-driven restricted
# satisfaction + sharded restricted firing vs the interleaved reference)
# EXP-16 (worker-resident satisfaction for mixed restricted rounds +
# adaptive shard routing), EXP-17 (goal-directed answer() serving vs
# full saturation) and EXP-18 (columnar replicas + shared-memory
# transport vs the pipe-only persistent engine), with GC disabled during
# timing so numbers are comparable across runs.  Tables land in
# benchmarks/results/.  The budget check then gates the freshly written
# BENCH_exp14.json / BENCH_exp18.json byte channels against
# benchmarks/transport_budget.json — transport bytes are deterministic,
# so exceeding a budget is a real protocol regression.
# The telemetry check then asserts every BENCH_*.json embeds a
# schema-versioned metrics-registry snapshot (benchmarks/conftest.emit_json
# stamps it) and that the perf-smoke artifact set is complete.
perf-smoke:
	PYTHONPATH=src $(PY) -m pytest \
	    benchmarks/bench_exp8_performance.py \
	    benchmarks/bench_exp12_incremental.py \
	    benchmarks/bench_exp13_parallel.py \
	    benchmarks/bench_exp14_persistent.py \
	    benchmarks/bench_exp15_restricted.py \
	    benchmarks/bench_exp16_mixed.py \
	    benchmarks/bench_exp17_serving.py \
	    benchmarks/bench_exp18_columnar.py \
	    -q --benchmark-disable-gc
	$(PY) tools/check_transport_budget.py
	$(PY) tools/check_bench_telemetry.py

# The full experiment battery (slow).
bench:
	PYTHONPATH=src $(PY) -m pytest benchmarks -q --benchmark-disable-gc
