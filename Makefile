# Convenience entry points; all targets assume the repo root as cwd.

PY ?= python

.PHONY: test perf-smoke bench

# Tier-1 verification: the full unit/integration suite.
test:
	PYTHONPATH=src $(PY) -m pytest -x -q

# Reproducible engine-performance smoke: EXP-8 (chase/homomorphism/rewriting
# throughput), EXP-12 (incremental vs naive trigger enumeration) and EXP-13
# (parallel engine vs sequential delta), with GC disabled during timing so
# numbers are comparable across runs.  Tables land in benchmarks/results/.
perf-smoke:
	PYTHONPATH=src $(PY) -m pytest \
	    benchmarks/bench_exp8_performance.py \
	    benchmarks/bench_exp12_incremental.py \
	    benchmarks/bench_exp13_parallel.py \
	    -q --benchmark-disable-gc

# The full experiment battery (slow).
bench:
	PYTHONPATH=src $(PY) -m pytest benchmarks -q --benchmark-disable-gc
